//! Thin safe wrappers over raw `io_uring` (Linux only).
//!
//! This is the io_uring analogue of [`poll`](crate::poll): the three
//! syscalls (`io_uring_setup`, `io_uring_enter`, `io_uring_register`)
//! are declared directly against the system libc's `syscall(2)`
//! trampoline — no binding crate — and every unsafe operation is
//! confined to this module behind owned types:
//!
//! - [`Ring`] owns one io_uring instance: the ring fd, the mmap'd
//!   submission/completion rings, and the SQE array. Callers push
//!   prepared SQEs ([`Sqe`]) and reap copied-out CQEs ([`Cqe`]);
//!   a single [`Ring::submit_and_wait`] both submits the queued batch
//!   and waits (with a timeout) for completions — one syscall where
//!   the epoll plane pays one per ready connection.
//! - [`BufRing`] owns one registered provided-buffer ring
//!   (`IORING_REGISTER_PBUF_RING`) plus the buffer memory behind it.
//!   Receives submitted with `IOSQE_BUFFER_SELECT` let the kernel pick
//!   a buffer only when data actually arrives, so hundreds of parked
//!   connections don't each pin a 64 KiB read buffer.
//!
//! # Safety invariants (see DESIGN.md §14)
//!
//! 1. **SQE memory**: SQEs are copied into the mmap'd array before the
//!    tail is published (release store); the kernel reads them only at
//!    `io_uring_enter` time (`IORING_FEAT_SUBMIT_STABLE` is required
//!    by [`supported`]), so the slot can be reused after submit.
//! 2. **Send buffers**: [`Sqe::send`] captures a raw pointer. The
//!    caller must keep that allocation alive and un-moved until the
//!    matching CQE is reaped. The io_uring reactor upholds this by
//!    double-buffering: bytes move into a dedicated in-flight buffer
//!    that is never touched (no push, no realloc, no free) while a
//!    send is outstanding, and ring teardown reaps every outstanding
//!    completion before buffers drop.
//! 3. **Provided buffers**: buffer memory belongs to the kernel from
//!    the moment a buffer id is published in the ring until a CQE
//!    carrying that id (`IORING_CQE_F_BUFFER`) is reaped; the reactor
//!    copies the bytes out and recycles the id in the same batch.
//! 4. **Ring memory**: the mmap'd rings live exactly as long as the
//!    ring fd; [`Ring`] drops the maps after closing the fd, and the
//!    kernel holds its own page references, so neither order can leave
//!    a dangling kernel-visible mapping.

// The whole point of this module is to confine the crate's io_uring
// unsafety in one reviewable file (the crate root carries
// `#![deny(unsafe_code)]`); every `unsafe` block below documents the
// invariant it relies on, and unsafe operations inside unsafe fns
// still need their own blocks.
#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::io;
use std::net::TcpStream;
use std::os::raw::{c_int, c_long, c_uint, c_void};
use std::os::unix::io::{FromRawFd, RawFd};
use std::sync::atomic::{AtomicU16, AtomicU32, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

// Same numbers on x86-64 and aarch64 (the generic syscall table).
const SYS_IO_URING_SETUP: c_long = 425;
const SYS_IO_URING_ENTER: c_long = 426;
const SYS_IO_URING_REGISTER: c_long = 427;

const IORING_OP_NOP: u8 = 0;
const IORING_OP_POLL_ADD: u8 = 6;
const IORING_OP_ACCEPT: u8 = 13;
const IORING_OP_SEND: u8 = 26;
const IORING_OP_RECV: u8 = 27;

/// `sqe.flags`: pick a buffer from the group in `buf_group`.
const IOSQE_BUFFER_SELECT: u8 = 1 << 5;
/// `sqe.ioprio` for accept: keep producing CQEs from one SQE.
const IORING_ACCEPT_MULTISHOT: u16 = 1 << 0;

/// CQE flags.
pub(crate) const IORING_CQE_F_BUFFER: u32 = 1 << 0;
pub(crate) const IORING_CQE_F_MORE: u32 = 1 << 1;
pub(crate) const IORING_CQE_BUFFER_SHIFT: u32 = 16;

const IORING_SETUP_CQSIZE: u32 = 1 << 3;
const IORING_SETUP_CLAMP: u32 = 1 << 4;

const IORING_ENTER_GETEVENTS: c_uint = 1 << 0;
const IORING_ENTER_EXT_ARG: c_uint = 1 << 3;

const IORING_FEAT_SINGLE_MMAP: u32 = 1 << 0;
const IORING_FEAT_NODROP: u32 = 1 << 1;
const IORING_FEAT_SUBMIT_STABLE: u32 = 1 << 2;
const IORING_FEAT_EXT_ARG: u32 = 1 << 8;

const IORING_REGISTER_PBUF_RING: c_uint = 22;
const IORING_UNREGISTER_PBUF_RING: c_uint = 23;

const IORING_OFF_SQ_RING: i64 = 0;
const IORING_OFF_SQES: i64 = 0x1000_0000;

const PROT_READ: c_int = 0x1;
const PROT_WRITE: c_int = 0x2;
const MAP_SHARED: c_int = 0x1;
const MAP_PRIVATE: c_int = 0x2;
const MAP_ANONYMOUS: c_int = 0x20;

const POLLIN: u32 = 0x1;
const MSG_NOSIGNAL: u32 = 0x4000;
/// `accept4` flag: new sockets are close-on-exec, like every other fd
/// this crate creates.
const SOCK_CLOEXEC: u32 = 0o200_0000;

const ETIME: i32 = 62;
const EINTR: i32 = 4;
const EBUSY: i32 = 16;
/// `-ENOBUFS` on a buffer-select receive: the provided-buffer ring is
/// momentarily empty (every buffer is out being processed).
pub(crate) const ENOBUFS: i32 = 105;

mod sys {
    use super::{c_int, c_long, c_void};

    extern "C" {
        pub fn syscall(num: c_long, ...) -> c_long;
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> c_int;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// The kernel's `struct io_sqring_offsets`.
#[repr(C)]
#[derive(Clone, Copy, Default)]
struct SqOffsets {
    head: u32,
    tail: u32,
    ring_mask: u32,
    ring_entries: u32,
    flags: u32,
    dropped: u32,
    array: u32,
    resv1: u32,
    resv2: u64,
}

/// The kernel's `struct io_cqring_offsets`.
#[repr(C)]
#[derive(Clone, Copy, Default)]
struct CqOffsets {
    head: u32,
    tail: u32,
    ring_mask: u32,
    ring_entries: u32,
    overflow: u32,
    cqes: u32,
    flags: u32,
    resv1: u32,
    resv2: u64,
}

/// The kernel's `struct io_uring_params` (setup in/out argument).
#[repr(C)]
#[derive(Clone, Copy, Default)]
struct Params {
    sq_entries: u32,
    cq_entries: u32,
    flags: u32,
    sq_thread_cpu: u32,
    sq_thread_idle: u32,
    features: u32,
    wq_fd: u32,
    resv: [u32; 3],
    sq_off: SqOffsets,
    cq_off: CqOffsets,
}

/// The kernel's 64-byte `struct io_uring_sqe`, with the unions
/// flattened to the fields this crate uses.
#[repr(C)]
#[derive(Clone, Copy)]
pub(crate) struct Sqe {
    opcode: u8,
    flags: u8,
    ioprio: u16,
    fd: i32,
    off: u64,
    addr: u64,
    len: u32,
    op_flags: u32,
    user_data: u64,
    buf_group: u16,
    personality: u16,
    splice_fd_in: i32,
    addr3: u64,
    pad2: u64,
}

const _: () = assert!(std::mem::size_of::<Sqe>() == 64);

impl Sqe {
    fn zeroed(opcode: u8, fd: RawFd, user_data: u64) -> Sqe {
        Sqe {
            opcode,
            flags: 0,
            ioprio: 0,
            fd,
            off: 0,
            addr: 0,
            len: 0,
            op_flags: 0,
            user_data,
            buf_group: 0,
            personality: 0,
            splice_fd_in: 0,
            addr3: 0,
            pad2: 0,
        }
    }

    /// A no-op request (completes immediately with `res == 0`).
    pub(crate) fn nop(user_data: u64) -> Sqe {
        Sqe::zeroed(IORING_OP_NOP, -1, user_data)
    }

    /// Multishot accept on a listening socket: one SQE keeps producing
    /// one CQE per accepted connection (`res` = new fd) until an error
    /// or a CQE without [`IORING_CQE_F_MORE`] retires it.
    pub(crate) fn accept_multishot(listener: RawFd, user_data: u64) -> Sqe {
        let mut sqe = Sqe::zeroed(IORING_OP_ACCEPT, listener, user_data);
        sqe.ioprio = IORING_ACCEPT_MULTISHOT;
        sqe.op_flags = SOCK_CLOEXEC;
        sqe
    }

    /// Single-shot poll for readability (used for the eventfd
    /// doorbell; no buffers involved).
    pub(crate) fn poll_readable(fd: RawFd, user_data: u64) -> Sqe {
        let mut sqe = Sqe::zeroed(IORING_OP_POLL_ADD, fd, user_data);
        sqe.op_flags = POLLIN;
        sqe
    }

    /// Receive with kernel buffer selection from group `bgid`: the
    /// kernel picks a provided buffer only when data arrives and
    /// reports its id in the CQE flags (`IORING_CQE_F_BUFFER`).
    pub(crate) fn recv_select(fd: RawFd, bgid: u16, user_data: u64) -> Sqe {
        let mut sqe = Sqe::zeroed(IORING_OP_RECV, fd, user_data);
        sqe.flags = IOSQE_BUFFER_SELECT;
        sqe.buf_group = bgid;
        sqe
    }

    /// Send `len` bytes starting at `ptr`.
    ///
    /// **Invariant 2**: the allocation behind `ptr` must stay alive and
    /// un-moved until the CQE for this request is reaped (the kernel
    /// may read it after `io_uring_enter` returns if the socket buffer
    /// was full at submit time).
    pub(crate) fn send(fd: RawFd, ptr: *const u8, len: usize, user_data: u64) -> Sqe {
        let mut sqe = Sqe::zeroed(IORING_OP_SEND, fd, user_data);
        sqe.addr = ptr as u64;
        sqe.len = u32::try_from(len).unwrap_or(u32::MAX);
        sqe.op_flags = MSG_NOSIGNAL;
        sqe
    }
}

/// A copied-out completion: `res` is the syscall-style result
/// (negative errno on failure), `flags` carries buffer id / multishot
/// continuation bits.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub(crate) struct Cqe {
    pub(crate) user_data: u64,
    pub(crate) res: i32,
    pub(crate) flags: u32,
}

const _: () = assert!(std::mem::size_of::<Cqe>() == 16);

/// The kernel's `struct io_uring_getevents_arg` for
/// `IORING_ENTER_EXT_ARG` timed waits.
#[repr(C)]
struct GetEventsArg {
    sigmask: u64,
    sigmask_sz: u32,
    pad: u32,
    ts: u64,
}

#[repr(C)]
struct KernelTimespec {
    tv_sec: i64,
    tv_nsec: i64,
}

/// An owned anonymous or ring mmap region.
struct Mmap {
    ptr: *mut u8,
    len: usize,
}

// Invariant: an `Mmap` is an exclusive owner of its region; the raw
// pointer is only dereferenced by the `Ring`/`BufRing` that owns it,
// which never migrates between threads mid-operation.
unsafe impl Send for Mmap {}

impl Mmap {
    /// Maps a region of the ring fd (SQ/CQ rings, SQE array).
    fn ring(fd: RawFd, len: usize, offset: i64) -> io::Result<Mmap> {
        // Safety: mmap with a valid fd; the result is checked below.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                fd,
                offset,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            ptr: ptr.cast(),
            len,
        })
    }

    /// Maps anonymous zeroed memory (page-aligned, as
    /// `IORING_REGISTER_PBUF_RING` requires).
    fn anon(len: usize) -> io::Result<Mmap> {
        // Safety: anonymous mapping; the result is checked below.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            ptr: ptr.cast(),
            len,
        })
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        // Safety: unmapping a region this struct exclusively owns.
        let _ = unsafe { sys::munmap(self.ptr.cast(), self.len) };
    }
}

fn enter(
    fd: RawFd,
    to_submit: u32,
    min_complete: u32,
    flags: c_uint,
    arg: *const c_void,
    argsz: usize,
) -> io::Result<u32> {
    // Safety: the ring fd is owned by the calling `Ring`; `arg`, when
    // non-null, points at a live `GetEventsArg` on the caller's stack.
    let ret = unsafe {
        sys::syscall(
            SYS_IO_URING_ENTER,
            c_long::from(fd),
            c_long::from(to_submit),
            c_long::from(min_complete),
            c_long::from(flags),
            arg as c_long,
            argsz as c_long,
        )
    };
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret as u32)
    }
}

/// An owned io_uring instance: ring fd, mmap'd SQ/CQ rings, SQE array.
///
/// Single-owner by design: one `Ring` lives on one event-loop thread;
/// nothing here is shared, so all ring-pointer accesses are plain
/// acquire/release pairs against the kernel.
pub(crate) struct Ring {
    fd: RawFd,
    // Keep-alive owners of the mappings every cached pointer below
    // targets; never read directly (invariant 4 covers drop order).
    _sqes_map: Mmap,
    _ring_map: Mmap,
    // Cached ring geometry (pointers into `ring_map`).
    sq_head: *const AtomicU32,
    sq_tail: *const AtomicU32,
    sq_mask: u32,
    sq_entries: u32,
    sq_array: *mut u32,
    sqes: *mut Sqe,
    cq_head: *const AtomicU32,
    cq_tail: *const AtomicU32,
    cq_mask: u32,
    cqes: *const Cqe,
    /// Local (unpublished-to-kernel-yet-unsubmitted) SQ tail mirror.
    tail: u32,
    /// SQEs pushed but not yet passed to `io_uring_enter`.
    pending: u32,
}

// Invariant: `Ring` is moved to its event-loop thread once at spawn
// and never aliased; all pointers target the maps it owns.
unsafe impl Send for Ring {}

impl Ring {
    /// Creates a ring with `sq_entries` submission slots and an
    /// enlarged completion ring (`cq_entries`), requiring the feature
    /// set the reactor depends on.
    pub(crate) fn new(sq_entries: u32, cq_entries: u32) -> io::Result<Ring> {
        let mut params = Params {
            flags: IORING_SETUP_CQSIZE | IORING_SETUP_CLAMP,
            cq_entries,
            ..Params::default()
        };
        // Safety: setup with a valid params struct; fd checked below.
        let fd = unsafe {
            sys::syscall(
                SYS_IO_URING_SETUP,
                c_long::from(sq_entries),
                std::ptr::addr_of_mut!(params) as c_long,
            )
        };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let fd = fd as RawFd;
        let required = IORING_FEAT_SINGLE_MMAP
            | IORING_FEAT_NODROP
            | IORING_FEAT_SUBMIT_STABLE
            | IORING_FEAT_EXT_ARG;
        if params.features & required != required {
            // Safety: closing the fd this function just created.
            unsafe { sys::close(fd) };
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "io_uring lacks required features",
            ));
        }
        let sq_size = params.sq_off.array as usize + params.sq_entries as usize * 4;
        let cq_size =
            params.cq_off.cqes as usize + params.cq_entries as usize * std::mem::size_of::<Cqe>();
        let ring_len = sq_size.max(cq_size);
        let ring_map = match Mmap::ring(fd, ring_len, IORING_OFF_SQ_RING) {
            Ok(m) => m,
            Err(e) => {
                // Safety: closing the fd this function owns.
                unsafe { sys::close(fd) };
                return Err(e);
            }
        };
        let sqes_len = params.sq_entries as usize * std::mem::size_of::<Sqe>();
        let sqes_map = match Mmap::ring(fd, sqes_len, IORING_OFF_SQES) {
            Ok(m) => m,
            Err(e) => {
                // Safety: closing the fd this function owns.
                unsafe { sys::close(fd) };
                return Err(e);
            }
        };
        let base = ring_map.ptr;
        // Safety: all offsets come from the kernel's params for this
        // very mapping; the resulting pointers stay inside `ring_map`.
        let ring = unsafe {
            let at = |off: u32| base.add(off as usize);
            Ring {
                fd,
                sq_head: at(params.sq_off.head).cast::<AtomicU32>(),
                sq_tail: at(params.sq_off.tail).cast::<AtomicU32>(),
                sq_mask: *at(params.sq_off.ring_mask).cast::<u32>(),
                sq_entries: params.sq_entries,
                sq_array: at(params.sq_off.array).cast::<u32>(),
                sqes: sqes_map.ptr.cast::<Sqe>(),
                cq_head: at(params.cq_off.head).cast::<AtomicU32>(),
                cq_tail: at(params.cq_off.tail).cast::<AtomicU32>(),
                cq_mask: *at(params.cq_off.ring_mask).cast::<u32>(),
                cqes: at(params.cq_off.cqes).cast::<Cqe>(),
                tail: (*at(params.sq_off.tail).cast::<AtomicU32>()).load(Ordering::Relaxed),
                pending: 0,
                _ring_map: ring_map,
                _sqes_map: sqes_map,
            }
        };
        // Identity-map the SQ index array once; slots are then
        // addressed directly by `tail & mask`.
        for i in 0..ring.sq_entries {
            // Safety: `sq_array` has `sq_entries` u32 slots.
            unsafe {
                *ring.sq_array.add(i as usize) = i;
            }
        }
        Ok(ring)
    }

    /// The ring fd (for `BufRing` registration).
    pub(crate) fn fd(&self) -> RawFd {
        self.fd
    }

    /// Queues one SQE. Returns `false` when the submission ring is
    /// full — the caller should [`submit`](Ring::submit) and retry.
    pub(crate) fn push(&mut self, sqe: Sqe) -> bool {
        // Safety: `sq_head` points into the live ring mapping.
        let head = unsafe { (*self.sq_head).load(Ordering::Acquire) };
        if self.tail.wrapping_sub(head) >= self.sq_entries {
            return false;
        }
        let idx = (self.tail & self.sq_mask) as usize;
        // Safety: `idx < sq_entries`, so the slot is inside the SQE
        // array; the kernel only reads slots below the published tail
        // (invariant 1).
        unsafe {
            *self.sqes.add(idx) = sqe;
        }
        self.tail = self.tail.wrapping_add(1);
        // Safety: `sq_tail` points into the live ring mapping; release
        // publishes the SQE write above.
        unsafe {
            (*self.sq_tail).store(self.tail, Ordering::Release);
        }
        self.pending += 1;
        true
    }

    /// SQEs pushed since the last submit.
    pub(crate) fn pending(&self) -> u32 {
        self.pending
    }

    /// Submits the queued batch without waiting. Returns the number of
    /// SQEs the kernel consumed.
    pub(crate) fn submit(&mut self) -> io::Result<u32> {
        self.enter_loop(0, 0)
    }

    /// Submits the queued batch and waits up to `timeout` for at least
    /// one completion — the single syscall that replaces the epoll
    /// plane's `epoll_wait` + per-connection `read`/`write` round.
    pub(crate) fn submit_and_wait(&mut self, timeout: Duration) -> io::Result<u32> {
        let ts = KernelTimespec {
            tv_sec: i64::try_from(timeout.as_secs()).unwrap_or(i64::MAX),
            tv_nsec: i64::from(timeout.subsec_nanos()),
        };
        self.enter_loop(1, std::ptr::addr_of!(ts) as u64)
    }

    fn enter_loop(&mut self, min_complete: u32, ts_addr: u64) -> io::Result<u32> {
        loop {
            let (flags, arg, argsz): (c_uint, *const c_void, usize) = if ts_addr != 0 {
                let arg = GetEventsArg {
                    sigmask: 0,
                    sigmask_sz: 0,
                    pad: 0,
                    ts: ts_addr,
                };
                // The arg struct must outlive the call only — the
                // kernel copies it synchronously.
                let boxed = Box::new(arg);
                let res = enter(
                    self.fd,
                    self.pending,
                    min_complete,
                    IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG,
                    (&*boxed as *const GetEventsArg).cast(),
                    std::mem::size_of::<GetEventsArg>(),
                );
                match res {
                    Ok(n) => {
                        self.pending -= n.min(self.pending);
                        return Ok(n);
                    }
                    Err(e) => match e.raw_os_error() {
                        Some(ETIME) => return Ok(0),
                        Some(EINTR) => continue,
                        Some(EBUSY) => return Ok(0), // CQ backlog: reap first
                        _ => return Err(e),
                    },
                }
            } else {
                (0, std::ptr::null(), 0)
            };
            match enter(self.fd, self.pending, min_complete, flags, arg, argsz) {
                Ok(n) => {
                    self.pending -= n.min(self.pending);
                    return Ok(n);
                }
                Err(e) => match e.raw_os_error() {
                    Some(EINTR) => continue,
                    Some(EBUSY) => return Ok(0),
                    _ => return Err(e),
                },
            }
        }
    }

    /// Copies every pending completion into `out` and advances the CQ
    /// head. Returns how many were reaped.
    pub(crate) fn reap(&mut self, out: &mut Vec<Cqe>) -> usize {
        // Safety: head/tail point into the live ring mapping.
        let tail = unsafe { (*self.cq_tail).load(Ordering::Acquire) };
        let mut head = unsafe { (*self.cq_head).load(Ordering::Relaxed) };
        let n = tail.wrapping_sub(head) as usize;
        out.reserve(n);
        while head != tail {
            let idx = (head & self.cq_mask) as usize;
            // Safety: `idx` is below the CQ size and `head != tail`
            // means the kernel has published this entry.
            out.push(unsafe { *self.cqes.add(idx) });
            head = head.wrapping_add(1);
        }
        // Safety: publishing the consumed head back to the kernel.
        unsafe {
            (*self.cq_head).store(head, Ordering::Release);
        }
        n
    }

    fn register(&self, opcode: c_uint, arg: *const c_void, nr_args: u32) -> io::Result<()> {
        // Safety: valid ring fd and a live, correctly-typed argument
        // struct for this registration opcode.
        let ret = unsafe {
            sys::syscall(
                SYS_IO_URING_REGISTER,
                c_long::from(self.fd),
                c_long::from(opcode),
                arg as c_long,
                c_long::from(nr_args),
            )
        };
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }
}

impl Drop for Ring {
    fn drop(&mut self) {
        // Safety: closing the fd this struct owns; the mmaps unmap
        // afterwards via field drops (invariant 4).
        let _ = unsafe { sys::close(self.fd) };
    }
}

/// The kernel's `struct io_uring_buf` (one provided-buffer slot).
#[repr(C)]
#[derive(Clone, Copy)]
struct BufDesc {
    addr: u64,
    len: u32,
    bid: u16,
    resv: u16,
}

/// The kernel's `struct io_uring_buf_reg`.
#[repr(C)]
struct BufReg {
    ring_addr: u64,
    ring_entries: u32,
    bgid: u16,
    pad: u16,
    resv: [u64; 3],
}

/// Offset of the ring tail inside `struct io_uring_buf_ring` (it
/// overlays `bufs[0].resv`).
const BUF_RING_TAIL_OFFSET: usize = 14;

/// An owned registered provided-buffer ring plus the buffer memory it
/// publishes. Buffers are handed to the kernel by id; a receive
/// completion names the id it filled, and [`recycle`](BufRing::recycle)
/// returns it to the kernel (invariant 3).
pub(crate) struct BufRing {
    ring: Mmap,
    data: Mmap,
    entries: u16,
    buf_len: usize,
    bgid: u16,
    tail: u16,
    /// Non-owning copy of the ring fd for unregistration; the owning
    /// `Worker` drops the `BufRing` before its `Ring`.
    ring_fd: RawFd,
}

impl BufRing {
    /// Allocates `entries` buffers of `buf_len` bytes and registers
    /// them as group `bgid` on `ring`. `entries` must be a power of
    /// two.
    pub(crate) fn new(ring: &Ring, bgid: u16, entries: u16, buf_len: usize) -> io::Result<BufRing> {
        assert!(entries.is_power_of_two(), "buffer ring size");
        let ring_map = Mmap::anon(entries as usize * std::mem::size_of::<BufDesc>())?;
        let data = Mmap::anon(entries as usize * buf_len)?;
        let reg = BufReg {
            ring_addr: ring_map.ptr as u64,
            ring_entries: u32::from(entries),
            bgid,
            pad: 0,
            resv: [0; 3],
        };
        ring.register(IORING_REGISTER_PBUF_RING, std::ptr::addr_of!(reg).cast(), 1)?;
        let mut br = BufRing {
            ring: ring_map,
            data,
            entries,
            buf_len,
            bgid,
            tail: 0,
            ring_fd: ring.fd(),
        };
        for bid in 0..entries {
            br.recycle(bid);
        }
        Ok(br)
    }

    /// The buffer group id receives should select from.
    pub(crate) fn bgid(&self) -> u16 {
        self.bgid
    }

    /// The bytes a completed receive placed in buffer `bid`.
    ///
    /// The slice borrows `self`, and the buffer is not back under
    /// kernel ownership until [`recycle`](BufRing::recycle) republishes
    /// it, so the borrow cannot race a concurrent kernel write.
    pub(crate) fn bytes(&self, bid: u16, len: usize) -> &[u8] {
        let len = len.min(self.buf_len);
        let off = bid as usize % self.entries as usize * self.buf_len;
        // Safety: `off + len` stays inside the data mapping, and the
        // kernel stopped writing this buffer when it posted the CQE.
        unsafe { std::slice::from_raw_parts(self.data.ptr.add(off), len) }
    }

    /// Returns buffer `bid` to the kernel's ring (publishing with a
    /// release store so the descriptor write is visible first).
    pub(crate) fn recycle(&mut self, bid: u16) {
        let bid = bid % self.entries;
        let mask = self.entries - 1;
        let idx = (self.tail & mask) as usize;
        let desc = BufDesc {
            addr: self.data.ptr as u64 + u64::from(bid) * self.buf_len as u64,
            len: u32::try_from(self.buf_len).unwrap_or(u32::MAX),
            bid,
            resv: 0,
        };
        // Safety: `idx < entries`, inside the ring mapping this struct
        // owns.
        unsafe {
            *self.ring.ptr.cast::<BufDesc>().add(idx) = desc;
        }
        self.tail = self.tail.wrapping_add(1);
        // Safety: the tail overlays bytes 14..16 of the ring mapping;
        // release publishes the descriptor write above.
        unsafe {
            (*self.ring.ptr.add(BUF_RING_TAIL_OFFSET).cast::<AtomicU16>())
                .store(self.tail, Ordering::Release);
        }
    }
}

impl Drop for BufRing {
    fn drop(&mut self) {
        let reg = BufReg {
            ring_addr: 0,
            ring_entries: 0,
            bgid: self.bgid,
            pad: 0,
            resv: [0; 3],
        };
        // Safety: unregistering by bgid; harmless if the ring fd is
        // already closed (the call just fails).
        let _ = unsafe {
            sys::syscall(
                SYS_IO_URING_REGISTER,
                c_long::from(self.ring_fd),
                c_long::from(IORING_UNREGISTER_PBUF_RING),
                std::ptr::addr_of!(reg) as c_long,
                1 as c_long,
            )
        };
    }
}

/// Adopts a raw fd produced by a multishot-accept completion as a
/// [`TcpStream`].
///
/// Invariant: `fd` must be a connected socket freshly delivered by an
/// accept CQE on a ring this process owns — it is owned by nothing
/// else, so handing it to `TcpStream` (which closes on drop) is the
/// unique ownership transfer.
pub(crate) fn tcp_from_accept(fd: RawFd) -> TcpStream {
    // Safety: see the function contract above.
    unsafe { TcpStream::from_raw_fd(fd) }
}

/// Whether this kernel supports everything the io_uring data plane
/// needs: the ring feature set checked by [`Ring::new`] plus
/// registered provided-buffer rings (Linux ≥ 5.19, which is also when
/// multishot accept landed). Probed once per process; a sandbox that
/// blocks `io_uring_setup` (seccomp) probes as unsupported, which is
/// exactly the fallback behaviour the server wants.
pub(crate) fn supported() -> bool {
    static SUPPORTED: OnceLock<bool> = OnceLock::new();
    // The probe runs on a throwaway thread: the kernel delivers ring
    // completion task-work through thread-targeted signal notifications
    // (`TWA_SIGNAL`), and a notification left over from the probe
    // ring's teardown would surface as a spurious `EINTR` on the
    // *caller's* next blocking syscall. A dedicated thread takes those
    // notifications with it when it exits.
    *SUPPORTED.get_or_init(|| {
        std::thread::Builder::new()
            .name("proteus-uring-probe".into())
            .spawn(probe)
            .map(|handle| handle.join().unwrap_or(false))
            .unwrap_or(false)
    })
}

fn probe() -> bool {
    let Ok(mut ring) = Ring::new(8, 16) else {
        return false;
    };
    if BufRing::new(&ring, 0, 1, 4096).is_err() {
        return false;
    }
    // A NOP round trip proves io_uring_enter is permitted too.
    if !ring.push(Sqe::nop(7)) {
        return false;
    }
    if ring.submit_and_wait(Duration::from_secs(5)).is_err() {
        return false;
    }
    let mut cqes = Vec::new();
    ring.reap(&mut cqes);
    cqes.iter().any(|c| c.user_data == 7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn probe_is_stable() {
        assert_eq!(supported(), supported());
    }

    #[test]
    fn nop_round_trip() {
        if !supported() {
            eprintln!("skipped: no io_uring");
            return;
        }
        let mut ring = Ring::new(8, 16).unwrap();
        assert!(ring.push(Sqe::nop(11)));
        assert!(ring.push(Sqe::nop(22)));
        assert_eq!(ring.pending(), 2);
        ring.submit_and_wait(Duration::from_secs(5)).unwrap();
        let mut cqes = Vec::new();
        while cqes.len() < 2 {
            ring.submit_and_wait(Duration::from_secs(5)).unwrap();
            ring.reap(&mut cqes);
        }
        let mut data: Vec<u64> = cqes.iter().map(|c| c.user_data).collect();
        data.sort_unstable();
        assert_eq!(data, vec![11, 22]);
        assert!(cqes.iter().all(|c| c.res == 0));
    }

    #[test]
    fn buffer_select_recv_delivers_bytes() {
        if !supported() {
            eprintln!("skipped: no io_uring");
            return;
        }
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();

        let mut ring = Ring::new(8, 16).unwrap();
        let mut bufs = BufRing::new(&ring, 3, 4, 1024).unwrap();
        assert!(ring.push(Sqe::recv_select(server_side.as_raw_fd(), bufs.bgid(), 99)));
        client.write_all(b"ping").unwrap();
        let mut cqes = Vec::new();
        while cqes.is_empty() {
            ring.submit_and_wait(Duration::from_secs(5)).unwrap();
            ring.reap(&mut cqes);
        }
        let cqe = cqes[0];
        assert_eq!(cqe.user_data, 99);
        assert_eq!(cqe.res, 4);
        assert_ne!(cqe.flags & IORING_CQE_F_BUFFER, 0, "buffer id expected");
        let bid = (cqe.flags >> IORING_CQE_BUFFER_SHIFT) as u16;
        assert_eq!(bufs.bytes(bid, cqe.res as usize), b"ping");
        bufs.recycle(bid);
    }

    #[test]
    fn multishot_accept_delivers_connections() {
        if !supported() {
            eprintln!("skipped: no io_uring");
            return;
        }
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut ring = Ring::new(8, 32).unwrap();
        assert!(ring.push(Sqe::accept_multishot(listener.as_raw_fd(), 5)));
        ring.submit().unwrap();
        let c1 = TcpStream::connect(addr).unwrap();
        let c2 = TcpStream::connect(addr).unwrap();
        let mut cqes = Vec::new();
        let mut fds = Vec::new();
        while fds.len() < 2 {
            ring.submit_and_wait(Duration::from_secs(5)).unwrap();
            ring.reap(&mut cqes);
            for cqe in cqes.drain(..) {
                assert_eq!(cqe.user_data, 5);
                assert!(cqe.res >= 0, "accept failed: {}", cqe.res);
                assert_ne!(cqe.flags & IORING_CQE_F_MORE, 0, "multishot must persist");
                fds.push(cqe.res);
            }
        }
        for fd in fds {
            drop(tcp_from_accept(fd));
        }
        drop((c1, c2));
    }
}
