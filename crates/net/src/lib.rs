//! Real-socket deployment of the Proteus cache tier.
//!
//! The discrete-event simulator (`proteus-core`) reproduces the
//! paper's *measurements*; this crate demonstrates the *protocol* end
//! to end on live TCP sockets, mirroring the paper's implementation
//! section:
//!
//! - [`CacheServer`] — a cache server wrapping a lock-striped
//!   [`proteus_cache::ShardedEngine`] (no global engine mutex),
//!   speaking a memcached-flavoured text protocol (`get` / multi-key
//!   `get k1 k2 ...` / `set` / `delete` / `stats` / `quit`). Two data
//!   planes, selected by [`ServerConfig`]: a non-blocking **epoll
//!   reactor** (the Linux default — a handful of event-loop threads
//!   absorb thousands of mostly-idle web-tier connections) and the
//!   portable thread-per-connection plane, kept as the correctness
//!   oracle the reactor is property-tested against.
//!   Like the paper's modified memcached, the reserved keys
//!   `SET_BLOOM_FILTER` and `BLOOM_FILTER` snapshot and retrieve the
//!   server's digest **through the ordinary data protocol**, so any
//!   stock client library can fetch digests; the snapshot is built one
//!   shard at a time and never stalls unrelated traffic.
//! - [`CacheClient`] — a blocking client with connection pooling
//!   (the paper pools connections via Apache Commons Pool) and
//!   batched, pipelined multi-key gets
//!   ([`get_many`](CacheClient::get_many)).
//! - [`ClusterClient`] — the web-tier side: consistent routing over
//!   any [`PlacementStrategy`](proteus_ring::PlacementStrategy) plus
//!   Algorithm 2 retrieval against live servers with a pluggable
//!   database fallback.
//! - **Fault tolerance** — a power policy turns cache servers off
//!   mid-traffic, so unreachable servers are the common case, not an
//!   exception. Each [`CacheClient`] retries transport failures with
//!   jittered exponential backoff, reconnects broken pooled
//!   connections, and trips a per-server circuit breaker
//!   ([`ClientConfig`]); the [`ClusterClient`] degrades failed fetches
//!   to the database ([`ClusterFetch::Degraded`]) instead of erroring.
//!   [`FaultProxy`] is a TCP fault-injection forwarder for exercising
//!   these paths in integration tests and benches.
//!
//! # Example
//!
//! ```no_run
//! use proteus_cache::CacheConfig;
//! use proteus_net::{CacheClient, CacheServer};
//!
//! let server = CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(1 << 20))?;
//! let client = CacheClient::connect(server.addr())?;
//! client.set(b"k", b"v")?;
//! assert_eq!(client.get(b"k")?.as_deref(), Some(&b"v"[..]));
//! server.stop();
//! # Ok::<(), proteus_net::NetError>(())
//! ```

// `deny` (not `forbid`) so the two FFI modules below can opt back in:
// the epoll/eventfd bindings in `poll` and the io_uring bindings in
// `uring` are the only unsafe code in the crate; `poll` carries
// `#[allow(unsafe_code)]` at each use site, `uring` allows it
// module-wide but adds `#![deny(unsafe_op_in_unsafe_fn)]` and a
// documented invariant per unsafe block (DESIGN.md §14).
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod cluster_client;
#[cfg(target_os = "linux")]
mod conn;
mod error;
mod fault;
#[cfg(target_os = "linux")]
mod poll;
mod protocol;
#[cfg(target_os = "linux")]
mod reactor;
mod server;
#[cfg(target_os = "linux")]
mod uring;
#[cfg(target_os = "linux")]
mod uring_reactor;

pub use client::{CacheClient, ClientConfig, ClientStats, PendingGets};
pub use cluster_client::{
    ClusterClient, ClusterFetch, ClusterStats, DbFallback, HotKeyConfig, HotKeyStats,
    TransitionStatus,
};
pub use error::NetError;
pub use fault::{FaultMode, FaultProxy};
pub use protocol::{
    parse_raw_command, read_command, read_raw_command, read_response, read_response_buffered,
    write_command, write_command_unflushed, write_response, write_response_unflushed, Command,
    RawCommand, Response, ResponseWriter, ValueItem, WireBuf, DIGEST_KEY, DIGEST_SNAPSHOT_KEY,
};
pub use server::{CacheServer, EngineKind, ServerConfig, ServerMetrics};

/// Whether this kernel supports everything [`EngineKind::Uring`]
/// needs (io_uring with registered provided-buffer rings, Linux ≥
/// 5.19, not blocked by seccomp). When `false`, a `Uring` request
/// resolves to [`EngineKind::Reactor`]; tests and benches use this to
/// skip uring-specific assertions explicitly instead of silently
/// exercising the fallback plane.
#[must_use]
pub fn uring_supported() -> bool {
    #[cfg(target_os = "linux")]
    {
        uring::supported()
    }
    #[cfg(not(target_os = "linux"))]
    {
        false
    }
}

/// Re-export of the shared value-buffer type the wire layer hands out
/// (see [`proteus_cache::SharedBytes`]).
pub use proteus_cache::SharedBytes;
