//! The epoll reactor data plane (Linux only).
//!
//! Thread-per-connection (the [`EngineKind::Threaded`] plane) burns
//! one OS thread per attached web-tier client; the paper's testbed
//! already has every front-end holding a persistent connection to
//! every cache server, so fan-in grows with cluster size and the
//! thread count becomes the scalability ceiling long before the
//! zero-copy engine saturates. This module replaces that plane with a
//! small, fixed set of event-loop threads:
//!
//! - An **accept thread** owns the listener and round-robins new
//!   sockets across loops via a mutex-protected mailbox, waking the
//!   target loop through an [`EventFd`] doorbell.
//! - Each **event loop** owns one epoll instance and the connections
//!   routed to it; a connection never migrates, so all per-connection
//!   state is single-threaded and lock-free.
//! - Each **connection** is a [`ConnCore`] state machine (shared with
//!   the io_uring plane): *reading* bytes into a growable input
//!   buffer, *executing* every complete command it holds (through the
//!   same `serve_command` the threaded plane uses), and *writing* the
//!   queued responses, resuming partial writes when the socket backs
//!   up.
//!
//! The hot path reuses the zero-copy machinery from the threaded
//! plane: commands are parsed in place by
//! [`parse_raw_command`](crate::protocol::parse_raw_command) (borrowed
//! keys, one long-lived `WireBuf` per connection) and responses are
//! assembled by `ResponseWriter` into a reused output buffer, so a
//! warmed connection serves gets without allocating.
//!
//! [`EngineKind::Threaded`]: crate::EngineKind::Threaded

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use proteus_obs::{Counter, Gauge};

use crate::conn::{ConnCore, OUT_HIGH_WATER};
use crate::error::NetError;
use crate::poll::{Epoll, EventFd, Events, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::server::{accept_retry_delay, Shared};

/// Token reserved for the loop's eventfd doorbell; connection tokens
/// count up from zero and never collide with it.
const WAKE_TOKEN: u64 = u64::MAX;

/// How long a loop sleeps in `epoll_wait` with nothing ready. Bounds
/// shutdown latency the same way the threaded plane's idle read
/// timeout does (the doorbell usually wakes loops sooner).
const WAIT_TIMEOUT: Duration = Duration::from_millis(100);

/// Socket read granularity: how much spare space each `read` call is
/// offered in the connection's input buffer.
const READ_CHUNK: usize = 64 << 10;

/// Reactor telemetry: per-loop connection gauges plus accept,
/// read-`EAGAIN`, and submit/complete batch counters, surfaced through
/// the server's registry (`stats proteus` and the metrics endpoint).
/// `events / waits` is the mean readiness batch one `epoll_wait`
/// syscall delivers — the epoll-plane analogue of the io_uring plane's
/// `cqes / enters`.
#[derive(Debug)]
pub(crate) struct ReactorStats {
    per_loop_connections: Vec<Gauge>,
    accepted: Counter,
    read_eagain: Counter,
    wakeups: Counter,
    waits: Counter,
    events: Counter,
}

impl ReactorStats {
    /// Fresh counters for a reactor with `loops` event loops.
    pub(crate) fn new(loops: usize) -> Self {
        ReactorStats {
            per_loop_connections: (0..loops).map(|_| Gauge::new()).collect(),
            accepted: Counter::new(),
            read_eagain: Counter::new(),
            wakeups: Counter::new(),
            waits: Counter::new(),
            events: Counter::new(),
        }
    }

    /// Connections currently owned by each loop, in loop order.
    pub(crate) fn loop_connections(&self) -> Vec<i64> {
        self.per_loop_connections.iter().map(Gauge::get).collect()
    }

    /// Sockets accepted and routed to a loop.
    pub(crate) fn accepted(&self) -> u64 {
        self.accepted.get()
    }

    /// Socket reads that returned `EAGAIN` (the level-triggered loop's
    /// "drained the socket" signal).
    pub(crate) fn read_eagain(&self) -> u64 {
        self.read_eagain.get()
    }

    /// Doorbell wake-ups delivered to event loops.
    pub(crate) fn wakeups(&self) -> u64 {
        self.wakeups.get()
    }

    /// `epoll_wait` syscalls issued (the submit side of a batch).
    pub(crate) fn waits(&self) -> u64 {
        self.waits.get()
    }

    /// Readiness events delivered across all waits (the complete side
    /// of a batch).
    pub(crate) fn events(&self) -> u64 {
        self.events.get()
    }
}

/// A cross-thread handoff slot: the accept thread pushes sockets, the
/// owning loop drains them when its doorbell rings. Shared with the
/// io_uring plane, whose accept-owning loop hands sockets to its
/// sibling loops the same way.
pub(crate) struct Mailbox {
    pub(crate) queue: Mutex<Vec<TcpStream>>,
    pub(crate) wake: EventFd,
}

impl Mailbox {
    pub(crate) fn new() -> Result<Mailbox, NetError> {
        Ok(Mailbox {
            queue: Mutex::new(Vec::new()),
            wake: EventFd::new()?,
        })
    }
}

/// The running reactor: the accept thread plus its event loops.
/// Dropping it after [`stop`](Reactor::stop) is a no-op; the server
/// owns shutdown ordering.
pub(crate) struct Reactor {
    accept_thread: Option<JoinHandle<()>>,
    loops: Vec<LoopHandle>,
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("loops", &self.loops.len())
            .finish_non_exhaustive()
    }
}

struct LoopHandle {
    thread: Option<JoinHandle<()>>,
    mailbox: Arc<Mailbox>,
}

impl Reactor {
    /// Starts `loops` event-loop threads and the accept thread.
    ///
    /// # Errors
    ///
    /// Returns an error if an epoll instance, eventfd, or thread
    /// cannot be created.
    pub(crate) fn spawn(
        listener: TcpListener,
        shared: Arc<Shared>,
        loops: usize,
    ) -> Result<Reactor, NetError> {
        let stats = shared
            .reactor_stats
            .clone()
            .expect("reactor spawned with reactor stats");
        let mut handles = Vec::with_capacity(loops.max(1));
        for index in 0..loops.max(1) {
            let mailbox = Arc::new(Mailbox::new()?);
            let epoll = Epoll::new()?;
            epoll.add(mailbox.wake.fd(), WAKE_TOKEN, EPOLLIN)?;
            let mut worker = Worker {
                epoll,
                mailbox: Arc::clone(&mailbox),
                shared: Arc::clone(&shared),
                stats: Arc::clone(&stats),
                index,
                conns: HashMap::new(),
                next_token: 0,
            };
            let thread = std::thread::Builder::new()
                .name(format!("proteus-loop-{index}"))
                .spawn(move || worker.run())?;
            handles.push(LoopHandle {
                thread: Some(thread),
                mailbox,
            });
        }
        let mailboxes: Vec<Arc<Mailbox>> = handles.iter().map(|h| Arc::clone(&h.mailbox)).collect();
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("proteus-accept".into())
            .spawn(move || {
                let mut next = 0usize;
                for stream in listener.incoming() {
                    // One blocking `accept` syscall per iteration.
                    accept_shared.metrics.plane_syscalls.inc();
                    if accept_shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match stream {
                        Ok(stream) => {
                            let mailbox = &mailboxes[next % mailboxes.len()];
                            next = next.wrapping_add(1);
                            stats.accepted.inc();
                            mailbox.queue.lock().push(stream);
                            mailbox.wake.notify();
                            accept_shared.metrics.plane_syscalls.inc(); // eventfd write
                        }
                        // Same policy as the threaded plane: no accept
                        // error kills the listener; exhaustion backs
                        // off, aborts retry immediately.
                        Err(e) => {
                            if let Some(delay) = accept_retry_delay(&e) {
                                std::thread::sleep(delay);
                            }
                        }
                    }
                }
            })?;
        Ok(Reactor {
            accept_thread: Some(accept_thread),
            loops: handles,
        })
    }

    /// Joins the accept thread and every event loop. The caller
    /// (`CacheServer::stop`) has already set the shutdown flag and
    /// poked the listener with a dummy connection; this rings every
    /// loop's doorbell so none waits out its epoll timeout.
    pub(crate) fn stop(&mut self) {
        for handle in &self.loops {
            handle.mailbox.wake.notify();
        }
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        for handle in &mut self.loops {
            if let Some(thread) = handle.thread.take() {
                let _ = thread.join();
            }
        }
    }
}

/// One connection on the epoll plane: the shared state machine plus
/// the epoll interest bits currently registered for it.
struct Conn {
    core: ConnCore,
    /// The epoll interest bits currently registered.
    interest: u32,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            core: ConnCore::new(stream),
            interest: EPOLLIN | EPOLLRDHUP,
        }
    }
}

/// One event loop: an epoll instance plus the connections routed to
/// it. Runs on its own thread until the server's shutdown flag rises.
struct Worker {
    epoll: Epoll,
    mailbox: Arc<Mailbox>,
    shared: Arc<Shared>,
    stats: Arc<ReactorStats>,
    index: usize,
    conns: HashMap<u64, Conn>,
    next_token: u64,
}

impl Worker {
    fn run(&mut self) {
        let mut events = Events::with_capacity(256);
        loop {
            self.stats.waits.inc();
            self.shared.metrics.plane_syscalls.inc();
            let Ok(n) = self.epoll.wait(&mut events, Some(WAIT_TIMEOUT)) else {
                break;
            };
            self.stats.events.add(n as u64);
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            // Tokens are copied out so closing a connection mid-batch
            // can't invalidate the iteration; a stale token for an
            // already-closed connection just misses the map.
            let batch: Vec<(u64, u32)> = events.iter().collect();
            for (token, bits) in batch {
                if token == WAKE_TOKEN {
                    self.stats.wakeups.inc();
                    self.mailbox.wake.drain();
                    self.shared.metrics.plane_syscalls.inc(); // eventfd read
                    self.adopt_new();
                } else {
                    self.drive(token, bits);
                }
            }
        }
        // Shutdown: drop every connection (closing the sockets) and
        // settle the gauges, mirroring the threaded plane's quiesce.
        for (_, conn) in self.conns.drain() {
            drop(conn);
            self.shared.metrics.curr_connections.dec();
            self.stats.per_loop_connections[self.index].dec();
        }
    }

    /// Registers every socket waiting in the mailbox.
    fn adopt_new(&mut self) {
        let streams: Vec<TcpStream> = std::mem::take(&mut *self.mailbox.queue.lock());
        for stream in streams {
            if stream.set_nonblocking(true).is_err() {
                continue; // peer already gone
            }
            let _ = stream.set_nodelay(true);
            let token = self.next_token;
            self.next_token += 1;
            if self
                .epoll
                .add(stream.as_raw_fd(), token, EPOLLIN | EPOLLRDHUP)
                .is_err()
            {
                continue;
            }
            self.shared.metrics.plane_syscalls.add(3); // nonblocking + nodelay + epoll_ctl
            self.conns.insert(token, Conn::new(stream));
            self.shared.metrics.total_connections.inc();
            self.shared.metrics.curr_connections.inc();
            self.stats.per_loop_connections[self.index].inc();
        }
    }

    /// Advances one connection's state machine for one readiness
    /// event, closing it when it finishes or fails.
    fn drive(&mut self, token: u64, bits: u32) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        match self.drive_conn(&mut conn, bits) {
            Ok(true) => {
                self.update_interest(token, &mut conn);
                self.conns.insert(token, conn);
            }
            Ok(false) | Err(()) => {
                // Socket closes on drop (deregistering it from epoll).
                drop(conn);
                self.shared.metrics.curr_connections.dec();
                self.stats.per_loop_connections[self.index].dec();
            }
        }
    }

    /// Runs the read → execute → write cycle. `Ok(true)` keeps the
    /// connection, `Ok(false)` is a graceful close (EOF or `closing`
    /// with everything flushed), `Err` is a fatal socket error.
    fn drive_conn(&mut self, conn: &mut Conn, bits: u32) -> Result<bool, ()> {
        if bits & EPOLLERR != 0 {
            return Err(());
        }
        if bits & EPOLLOUT != 0 {
            flush_out(&mut conn.core, &self.shared)?;
        }
        if bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0 {
            fill_in(&mut conn.core, &self.stats, &self.shared)?;
        }
        conn.core.process(&self.shared, 0)?;
        flush_out(&mut conn.core, &self.shared)?;
        if conn.core.closing && conn.core.out_pending() == 0 {
            return Ok(false);
        }
        Ok(true)
    }

    /// Re-arms epoll for what the connection now cares about: always
    /// readable while open and under the output high-water mark,
    /// writable only while responses are queued (level-triggered
    /// EPOLLOUT would spin otherwise).
    fn update_interest(&self, token: u64, conn: &mut Conn) {
        let pending = conn.core.out_pending();
        let mut want = 0;
        if pending > 0 {
            want |= EPOLLOUT;
        }
        if !conn.core.closing && pending <= OUT_HIGH_WATER {
            want |= EPOLLIN | EPOLLRDHUP;
        }
        if want != conn.interest {
            self.shared.metrics.plane_syscalls.inc();
            let _ = self.epoll.modify(conn.core.stream.as_raw_fd(), token, want);
            conn.interest = want;
        }
    }
}

/// Reads until the socket is drained (`EAGAIN`), EOF, or the output
/// high-water mark says to stop pulling in more work.
fn fill_in(conn: &mut ConnCore, stats: &ReactorStats, shared: &Shared) -> Result<(), ()> {
    loop {
        if conn.out_pending() > OUT_HIGH_WATER {
            return Ok(());
        }
        let old = conn.rbuf.len();
        conn.rbuf.resize(old + READ_CHUNK, 0);
        shared.metrics.plane_syscalls.inc();
        match conn.stream.read(&mut conn.rbuf[old..]) {
            Ok(0) => {
                conn.rbuf.truncate(old);
                conn.eof = true;
                return Ok(());
            }
            Ok(n) => {
                conn.rbuf.truncate(old + n);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                conn.rbuf.truncate(old);
                stats.read_eagain.inc();
                return Ok(());
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                conn.rbuf.truncate(old);
            }
            Err(_) => {
                conn.rbuf.truncate(old);
                return Err(());
            }
        }
    }
}

/// Drains queued response bytes to the socket, resuming where the
/// last partial write stopped; backs off on `EAGAIN` (EPOLLOUT will
/// re-arm) and reports hard errors.
fn flush_out(conn: &mut ConnCore, shared: &Shared) -> Result<(), ()> {
    let ConnCore { stream, writer, .. } = conn;
    let out = writer.get_mut();
    while out.pos < out.buf.len() {
        shared.metrics.plane_syscalls.inc();
        match stream.write(&out.buf[out.pos..]) {
            Ok(0) => return Err(()),
            Ok(n) => out.pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Err(()),
        }
    }
    if out.pos == out.buf.len() && out.pos > 0 {
        out.buf.clear();
        out.pos = 0;
    }
    Ok(())
}
