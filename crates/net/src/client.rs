//! Blocking cache client with connection pooling, bounded retries, and
//! a per-server circuit breaker.

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use proteus_bloom::{BloomFilter, DigestSnapshot};
use proteus_cache::SharedBytes;
use proteus_obs::{EventTracer, TraceKind};

use crate::error::NetError;
use crate::protocol::{
    read_response, write_command, write_command_unflushed, Command, Response, ValueItem,
    DIGEST_KEY, DIGEST_SNAPSHOT_KEY,
};

/// Tunables for one [`CacheClient`]'s fault-tolerance machinery.
///
/// The defaults suit a production cluster (generous timeouts, a couple
/// of quick retries, a breaker that fails fast after a burst of
/// consecutive transport errors). Integration tests and benches shrink
/// the timeouts so injected faults resolve in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Read/write timeout for one protocol exchange.
    pub op_timeout: Duration,
    /// TCP connect timeout (a dead host otherwise pays the OS SYN
    /// retransmit schedule, which is tens of seconds).
    pub connect_timeout: Duration,
    /// Transport-failure retries per operation (total attempts =
    /// `max_retries + 1`). Semantic errors never retry.
    pub max_retries: u32,
    /// First retry backoff; doubles per retry (with jitter).
    pub backoff_base: Duration,
    /// Upper bound for any single backoff sleep.
    pub backoff_cap: Duration,
    /// Consecutive transport failures that trip the circuit breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker fails fast before probing the server
    /// again.
    pub breaker_cooldown: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            op_timeout: Duration::from_secs(10),
            connect_timeout: Duration::from_secs(1),
            max_retries: 2,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(1),
        }
    }
}

impl ClientConfig {
    /// A configuration with short timeouts and cooldowns, for tests and
    /// benches that inject faults and cannot afford multi-second
    /// timeouts per dead server.
    #[must_use]
    pub fn fast_failover() -> Self {
        ClientConfig {
            op_timeout: Duration::from_millis(150),
            connect_timeout: Duration::from_millis(150),
            max_retries: 1,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(40),
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_secs(2),
        }
    }
}

/// Cumulative fault-tolerance counters for one [`CacheClient`]
/// (a snapshot of lock-free atomics; see [`CacheClient::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClientStats {
    /// Operations retried after a transport failure.
    pub retries: u64,
    /// Fresh connections dialed (first use and reconnects alike).
    pub connects: u64,
    /// Closed→open breaker transitions.
    pub breaker_trips: u64,
    /// Operations rejected without touching the network because the
    /// breaker was open.
    pub fast_fails: u64,
    /// Half-open probes sent after a cooldown elapsed.
    pub probes: u64,
}

#[derive(Debug, Default)]
struct AtomicClientStats {
    retries: AtomicU64,
    connects: AtomicU64,
    breaker_trips: AtomicU64,
    fast_fails: AtomicU64,
    probes: AtomicU64,
}

impl AtomicClientStats {
    fn load(&self) -> ClientStats {
        ClientStats {
            retries: self.retries.load(Ordering::Relaxed),
            connects: self.connects.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            fast_fails: self.fast_fails.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    /// Traffic flows normally.
    Closed,
    /// Failing fast until the cooldown deadline.
    Open { until: Instant },
    /// One probe is in flight; everyone else still fails fast.
    HalfOpen,
}

/// Admission decision for one attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Admission {
    Normal,
    Probe,
}

#[derive(Debug)]
struct Breaker {
    state: Mutex<BreakerState>,
    consecutive: AtomicU32,
}

impl Breaker {
    fn new() -> Breaker {
        Breaker {
            state: Mutex::new(BreakerState::Closed),
            consecutive: AtomicU32::new(0),
        }
    }

    /// Whether an attempt may proceed right now, and in what role.
    fn admit(&self) -> Result<Admission, ()> {
        let mut state = self.state.lock();
        match *state {
            BreakerState::Closed => Ok(Admission::Normal),
            BreakerState::Open { until } if Instant::now() >= until => {
                *state = BreakerState::HalfOpen;
                Ok(Admission::Probe)
            }
            BreakerState::Open { .. } | BreakerState::HalfOpen => Err(()),
        }
    }

    /// Records one success; returns `true` when this closed a
    /// previously open (or half-open) breaker — the recovery edge worth
    /// tracing.
    fn record_success(&self) -> bool {
        self.consecutive.store(0, Ordering::Relaxed);
        let mut state = self.state.lock();
        let reopened = !matches!(*state, BreakerState::Closed);
        *state = BreakerState::Closed;
        reopened
    }

    /// Records one transport failure; returns `true` when this failure
    /// transitions the breaker to open (a "trip").
    fn record_failure(&self, config: &ClientConfig) -> bool {
        let consecutive = self.consecutive.fetch_add(1, Ordering::Relaxed) + 1;
        let mut state = self.state.lock();
        match *state {
            // A failed probe swings straight back to open (not a fresh
            // trip for counting purposes — the outage is ongoing).
            BreakerState::HalfOpen => {
                *state = BreakerState::Open {
                    until: Instant::now() + config.breaker_cooldown,
                };
                false
            }
            BreakerState::Closed if consecutive >= config.breaker_threshold => {
                *state = BreakerState::Open {
                    until: Instant::now() + config.breaker_cooldown,
                };
                true
            }
            _ => false,
        }
    }

    fn is_open(&self) -> bool {
        !matches!(*self.state.lock(), BreakerState::Closed)
    }
}

/// An in-flight multi-key get whose request has been written but whose
/// response has not yet been read. Produced by
/// [`CacheClient::send_get_many`]; redeem it with
/// [`CacheClient::recv_get_many`]. Holding several of these (one per
/// server) pipelines a batch: all requests go out before any response
/// is awaited.
#[derive(Debug)]
pub struct PendingGets {
    reader: BufReader<TcpStream>,
    keys: Vec<Vec<u8>>,
}

/// A pooled, blocking client for one cache server.
///
/// Connections are created lazily, checked out per call, and returned
/// to the pool afterwards — the paper's web tier does the same with
/// Apache Commons Pool so servlet threads share connections.
///
/// Every operation is fault tolerant:
///
/// - transport failures (broken pooled connection, refused connect,
///   read timeout) retry up to [`ClientConfig::max_retries`] times on a
///   **fresh** connection, with exponential backoff and jitter;
/// - after [`ClientConfig::breaker_threshold`] consecutive transport
///   failures the per-server circuit breaker opens and operations fail
///   fast with [`NetError::CircuitOpen`] — no connect timeout is paid —
///   until a cooldown elapses and a single probe tests the server
///   again;
/// - semantic errors ([`NetError::ServerError`], protocol violations)
///   never retry and never trip the breaker.
///
/// `CacheClient` is `Send + Sync`; clone-free sharing via `&` works
/// from multiple threads.
///
/// # Example
///
/// ```no_run
/// use proteus_net::{CacheClient, CacheServer};
/// use proteus_cache::CacheConfig;
///
/// let server = CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(1 << 20))?;
/// let client = CacheClient::connect(server.addr())?;
/// client.set(b"k", b"v")?;
/// assert_eq!(client.get(b"k")?.as_deref(), Some(&b"v"[..]));
/// # Ok::<(), proteus_net::NetError>(())
/// ```
#[derive(Debug)]
pub struct CacheClient {
    addr: SocketAddr,
    pool: Mutex<Vec<TcpStream>>,
    config: ClientConfig,
    breaker: Breaker,
    stats: AtomicClientStats,
    /// Optional transition tracer: breaker state changes for this
    /// server are recorded as lifecycle events (open / probe / close).
    /// Touched only on state *transitions*, never per operation.
    tracer: Mutex<Option<(Arc<EventTracer>, u32)>>,
    /// xorshift state for backoff jitter (quality is irrelevant; only
    /// decorrelation between concurrent retriers matters).
    jitter: AtomicU64,
}

impl CacheClient {
    /// Creates a client for the server at `addr` with default
    /// [`ClientConfig`] and verifies connectivity with one probe
    /// connection.
    ///
    /// # Errors
    ///
    /// Returns an error if the server is unreachable.
    pub fn connect(addr: SocketAddr) -> Result<CacheClient, NetError> {
        CacheClient::connect_with(addr, ClientConfig::default())
    }

    /// [`connect`](Self::connect) with explicit fault-tolerance
    /// tunables.
    ///
    /// # Errors
    ///
    /// Returns an error if the server is unreachable.
    pub fn connect_with(addr: SocketAddr, config: ClientConfig) -> Result<CacheClient, NetError> {
        let client = CacheClient::disconnected(addr, config);
        let probe = client.dial()?;
        client.checkin(probe);
        Ok(client)
    }

    /// Creates a client without probing connectivity. The first
    /// operation dials lazily; a dead server surfaces there (and trips
    /// the breaker like any other transport failure). This is what a
    /// web tier wants when some cache servers may be powered off at
    /// start-up.
    #[must_use]
    pub fn disconnected(addr: SocketAddr, config: ClientConfig) -> CacheClient {
        // Decorrelate jitter streams across clients without consuming
        // an RNG dependency: hash the address and a wall-clock sample.
        let seed = {
            let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
            h ^= u64::from(addr.port());
            h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            h ^= Instant::now().elapsed().as_nanos() as u64 ^ (&h as *const u64 as u64);
            h | 1
        };
        CacheClient {
            addr,
            pool: Mutex::new(Vec::new()),
            config,
            breaker: Breaker::new(),
            stats: AtomicClientStats::default(),
            tracer: Mutex::new(None),
            jitter: AtomicU64::new(seed),
        }
    }

    /// Attaches a transition tracer: from now on, circuit-breaker state
    /// changes are recorded as [`TraceKind::BreakerOpen`] /
    /// [`TraceKind::BreakerProbe`] / [`TraceKind::BreakerClose`] events
    /// tagged with `server` (the cluster's index for this client).
    pub fn attach_tracer(&self, tracer: Arc<EventTracer>, server: u32) {
        *self.tracer.lock() = Some((tracer, server));
    }

    /// Records a breaker lifecycle event if a tracer is attached.
    fn trace_breaker(&self, make: impl FnOnce(u32) -> TraceKind) {
        if let Some((tracer, server)) = self.tracer.lock().as_ref() {
            tracer.record(make(*server));
        }
    }

    /// The server address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The client's fault-tolerance configuration.
    #[must_use]
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// Snapshot of the client-side fault-tolerance counters (retries,
    /// reconnects, breaker activity). The server's own `stats` command
    /// is [`stats`](Self::stats).
    #[must_use]
    pub fn fault_stats(&self) -> ClientStats {
        self.stats.load()
    }

    /// Whether the circuit breaker currently refuses (or probes)
    /// traffic instead of flowing normally.
    #[must_use]
    pub fn breaker_open(&self) -> bool {
        self.breaker.is_open()
    }

    fn dial(&self) -> Result<TcpStream, NetError> {
        self.stats.connects.fetch_add(1, Ordering::Relaxed);
        let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)?;
        stream.set_read_timeout(Some(self.config.op_timeout))?;
        stream.set_write_timeout(Some(self.config.op_timeout))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    fn checkout(&self) -> Result<TcpStream, NetError> {
        if let Some(stream) = self.pool.lock().pop() {
            return Ok(stream);
        }
        self.dial()
    }

    fn checkin(&self, stream: TcpStream) {
        let mut pool = self.pool.lock();
        if pool.len() < 8 {
            pool.push(stream);
        }
    }

    /// Drops every pooled connection. After one transport failure the
    /// rest of the pool is suspect (server restart, network blip), and
    /// reconnecting is cheaper than diagnosing each stream.
    fn poison_pool(&self) {
        self.pool.lock().clear();
    }

    fn jitter_sleep(&self, retry: u32) {
        // Exponential backoff with full-ish jitter: sleep uniformly in
        // [backoff/2, backoff), so concurrent retriers spread out.
        let exp = self
            .config
            .backoff_base
            .saturating_mul(1u32 << retry.min(16))
            .min(self.config.backoff_cap);
        let mut x = self.jitter.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter.store(x, Ordering::Relaxed);
        let nanos = exp.as_nanos() as u64;
        let jittered = nanos / 2 + x % (nanos / 2).max(1);
        std::thread::sleep(Duration::from_nanos(jittered));
    }

    /// Runs `attempt` under the retry + circuit-breaker policy:
    /// transport failures poison the pool, feed the breaker, and retry
    /// with backoff; anything else passes through. An open breaker
    /// fails fast with [`NetError::CircuitOpen`].
    fn with_failover<T>(
        &self,
        mut attempt: impl FnMut() -> Result<T, NetError>,
    ) -> Result<T, NetError> {
        let mut retry = 0u32;
        loop {
            let admission = match self.breaker.admit() {
                Ok(a) => a,
                Err(()) => {
                    self.stats.fast_fails.fetch_add(1, Ordering::Relaxed);
                    return Err(NetError::CircuitOpen(self.addr));
                }
            };
            if admission == Admission::Probe {
                self.stats.probes.fetch_add(1, Ordering::Relaxed);
                self.trace_breaker(|server| TraceKind::BreakerProbe { server });
            }
            match attempt() {
                Ok(value) => {
                    if self.breaker.record_success() {
                        self.trace_breaker(|server| TraceKind::BreakerClose { server });
                    }
                    return Ok(value);
                }
                Err(e) if matches!(e, NetError::Io(_)) => {
                    self.poison_pool();
                    if self.breaker.record_failure(&self.config) {
                        self.stats.breaker_trips.fetch_add(1, Ordering::Relaxed);
                        self.trace_breaker(|server| TraceKind::BreakerOpen { server });
                        // The breaker just opened: stop burning retries,
                        // callers get the underlying error this once and
                        // fast CircuitOpen failures afterwards.
                        return Err(e);
                    }
                    if admission == Admission::Probe || retry >= self.config.max_retries {
                        return Err(e);
                    }
                    retry += 1;
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    self.jitter_sleep(retry);
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn round_trip(&self, cmd: &Command) -> Result<Response, NetError> {
        let response = self.with_failover(|| {
            let stream = self.checkout()?;
            let mut writer = BufWriter::new(stream.try_clone()?);
            let mut reader = BufReader::new(stream);
            write_command(&mut writer, cmd)?;
            let response = read_response(&mut reader)?;
            // Only reusable if the exchange completed cleanly.
            self.checkin(reader.into_inner());
            Ok(response)
        })?;
        match response {
            Response::Error(msg) => Err(NetError::ServerError(msg)),
            ok => Ok(ok),
        }
    }

    /// Fetches `key`, returning its value if cached.
    ///
    /// The value arrives as a [`SharedBytes`] buffer: the bytes were
    /// copied off the socket exactly once, and handing them onward
    /// (to a migration re-`set`, another thread, ...) is a refcount
    /// bump, not a copy.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn get(&self, key: &[u8]) -> Result<Option<SharedBytes>, NetError> {
        match self.round_trip(&Command::Get { key: key.to_vec() })? {
            Response::Value { data, .. } => Ok(Some(data)),
            Response::Miss => Ok(None),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Fetches several keys in one request/response round trip
    /// (memcached `get k1 k2 ...`). Results align with `keys`: position
    /// `i` holds `Some(value)` if `keys[i]` was cached, `None` if not.
    ///
    /// Unlike the split [`send_get_many`](Self::send_get_many) /
    /// [`recv_get_many`](Self::recv_get_many) pair, this combined form
    /// retries the whole exchange on transport failures.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn get_many(&self, keys: &[&[u8]]) -> Result<Vec<Option<SharedBytes>>, NetError> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        self.with_failover(|| {
            let pending = self.send_get_many_once(keys)?;
            self.recv_get_many_once(pending)
        })
    }

    /// Writes a multi-key get and returns without waiting for the
    /// response. Each call uses its own pooled connection, so sending
    /// to several servers (or several batches) first and receiving
    /// afterwards overlaps the round trips.
    ///
    /// The write is retried under the client's failover policy; the
    /// later [`recv_get_many`](Self::recv_get_many) is not (the request
    /// cannot be replayed once the pipeline has moved on) — a transport
    /// failure there feeds the breaker and surfaces to the caller,
    /// which is how `ClusterClient::fetch_many` isolates a dead server
    /// to its own key group.
    ///
    /// # Errors
    ///
    /// Returns transport errors, or [`NetError::Protocol`] if `keys`
    /// is empty.
    pub fn send_get_many(&self, keys: &[&[u8]]) -> Result<PendingGets, NetError> {
        if keys.is_empty() {
            return Err(NetError::Protocol("get_many needs at least one key".into()));
        }
        self.with_failover(|| self.send_get_many_once(keys))
    }

    fn send_get_many_once(&self, keys: &[&[u8]]) -> Result<PendingGets, NetError> {
        let owned: Vec<Vec<u8>> = keys.iter().map(|k| k.to_vec()).collect();
        let cmd = if owned.len() == 1 {
            Command::Get {
                key: owned[0].clone(),
            }
        } else {
            Command::MultiGet {
                keys: owned.clone(),
            }
        };
        let stream = self.checkout()?;
        let mut writer = BufWriter::new(stream.try_clone()?);
        write_command(&mut writer, &cmd)?;
        Ok(PendingGets {
            reader: BufReader::new(stream),
            keys: owned,
        })
    }

    /// Reads the response for a [`send_get_many`](Self::send_get_many)
    /// and returns values aligned with the keys that were sent.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`]. A
    /// transport failure here counts against the circuit breaker but is
    /// not retried (see [`send_get_many`](Self::send_get_many)).
    pub fn recv_get_many(
        &self,
        pending: PendingGets,
    ) -> Result<Vec<Option<SharedBytes>>, NetError> {
        match self.recv_get_many_once(pending) {
            Ok(values) => {
                if self.breaker.record_success() {
                    self.trace_breaker(|server| TraceKind::BreakerClose { server });
                }
                Ok(values)
            }
            Err(e) if matches!(e, NetError::Io(_)) => {
                self.poison_pool();
                if self.breaker.record_failure(&self.config) {
                    self.stats.breaker_trips.fetch_add(1, Ordering::Relaxed);
                    self.trace_breaker(|server| TraceKind::BreakerOpen { server });
                }
                Err(e)
            }
            Err(e) => Err(e),
        }
    }

    fn recv_get_many_once(
        &self,
        pending: PendingGets,
    ) -> Result<Vec<Option<SharedBytes>>, NetError> {
        let PendingGets { mut reader, keys } = pending;
        let response = read_response(&mut reader)?;
        self.checkin(reader.into_inner());
        let items = match response {
            Response::Error(msg) => return Err(NetError::ServerError(msg)),
            Response::Miss => Vec::new(),
            Response::Value { key, flags, data } => vec![ValueItem { key, flags, data }],
            Response::Values(items) => items,
            other => return Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        };
        let found: std::collections::HashMap<Vec<u8>, SharedBytes> =
            items.into_iter().map(|i| (i.key, i.data)).collect();
        Ok(keys.iter().map(|k| found.get(k).cloned()).collect())
    }

    /// Stores `value` under `key`.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn set(&self, key: &[u8], value: &[u8]) -> Result<(), NetError> {
        self.set_shared(key, value.into())
    }

    /// Stores an already-shared `value` under `key` without copying it.
    ///
    /// This is the zero-copy companion to [`set`](Self::set): a buffer
    /// obtained from [`get`](Self::get) (for example during a drain
    /// migration that re-`set`s items onto their new server) is written
    /// to the wire directly from the shared allocation.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn set_shared(&self, key: &[u8], value: SharedBytes) -> Result<(), NetError> {
        match self.round_trip(&Command::Set {
            key: key.to_vec(),
            flags: 0,
            exptime: 0,
            data: value,
        })? {
            Response::Stored => Ok(()),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Stores several `(key, value)` pairs in one pipelined exchange:
    /// every `set` is written before any reply is read, so a batch of
    /// N installs pays one round trip instead of N. The values are
    /// shared buffers written to the wire without copying — this is
    /// the bulk companion to [`set_shared`](Self::set_shared), used by
    /// `ClusterClient::fetch_many` to re-`set` a batch of migrated
    /// keys onto their new server.
    ///
    /// The whole batch retries under the failover policy on transport
    /// failures (`set` is idempotent, so a replay is harmless).
    ///
    /// # Errors
    ///
    /// Returns transport errors or the first [`NetError::ServerError`]
    /// in the batch.
    pub fn set_many(&self, pairs: &[(&[u8], SharedBytes)]) -> Result<(), NetError> {
        if pairs.is_empty() {
            return Ok(());
        }
        self.with_failover(|| {
            let stream = self.checkout()?;
            let mut writer = BufWriter::new(stream.try_clone()?);
            for (key, value) in pairs {
                write_command_unflushed(
                    &mut writer,
                    &Command::Set {
                        key: key.to_vec(),
                        flags: 0,
                        exptime: 0,
                        data: SharedBytes::clone(value),
                    },
                )?;
            }
            writer.flush()?;
            let mut reader = BufReader::new(stream);
            for _ in pairs {
                match read_response(&mut reader)? {
                    Response::Stored => {}
                    Response::Error(msg) => return Err(NetError::ServerError(msg)),
                    other => return Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
                }
            }
            self.checkin(reader.into_inner());
            Ok(())
        })
    }

    /// Stores `value` only if `key` is absent (`add`); returns whether
    /// it was stored.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn add(&self, key: &[u8], value: &[u8]) -> Result<bool, NetError> {
        match self.round_trip(&Command::Add {
            key: key.to_vec(),
            flags: 0,
            exptime: 0,
            data: value.into(),
        })? {
            Response::Stored => Ok(true),
            Response::NotStored => Ok(false),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Stores `value` only if `key` is present (`replace`); returns
    /// whether it was stored.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn replace(&self, key: &[u8], value: &[u8]) -> Result<bool, NetError> {
        match self.round_trip(&Command::Replace {
            key: key.to_vec(),
            flags: 0,
            exptime: 0,
            data: value.into(),
        })? {
            Response::Stored => Ok(true),
            Response::NotStored => Ok(false),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Refreshes `key`'s recency (`touch`); returns whether it existed.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn touch(&self, key: &[u8]) -> Result<bool, NetError> {
        match self.round_trip(&Command::Touch {
            key: key.to_vec(),
            exptime: 0,
        })? {
            Response::Touched => Ok(true),
            Response::NotFound => Ok(false),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Adds `delta` to the numeric value under `key`, returning the new
    /// value, or `None` if the key is absent.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`] (e.g.
    /// a non-numeric stored value).
    pub fn incr(&self, key: &[u8], delta: u64) -> Result<Option<u64>, NetError> {
        match self.round_trip(&Command::Incr {
            key: key.to_vec(),
            delta,
        })? {
            Response::Numeric(v) => Ok(Some(v)),
            Response::NotFound => Ok(None),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Subtracts `delta` from the numeric value under `key` (floored at
    /// zero), returning the new value, or `None` if the key is absent.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn decr(&self, key: &[u8], delta: u64) -> Result<Option<u64>, NetError> {
        match self.round_trip(&Command::Decr {
            key: key.to_vec(),
            delta,
        })? {
            Response::Numeric(v) => Ok(Some(v)),
            Response::NotFound => Ok(None),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Clears the server's cache (`flush_all`).
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn flush_all(&self) -> Result<(), NetError> {
        match self.round_trip(&Command::FlushAll)? {
            Response::Ok => Ok(()),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// The server's version string.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn version(&self) -> Result<String, NetError> {
        match self.round_trip(&Command::Version)? {
            Response::Version(v) => Ok(v),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Deletes `key`, returning whether it existed.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn delete(&self, key: &[u8]) -> Result<bool, NetError> {
        match self.round_trip(&Command::Delete { key: key.to_vec() })? {
            Response::Deleted => Ok(true),
            Response::NotFound => Ok(false),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Deletes several keys in one pipelined exchange: every `delete`
    /// is written before any reply is read, so invalidating a hot
    /// key's N replicas pays one round trip instead of N. Returns how
    /// many of the keys existed.
    ///
    /// The whole batch retries under the failover policy on transport
    /// failures (`delete` is idempotent; a replayed delete just
    /// reports the key as already gone).
    ///
    /// # Errors
    ///
    /// Returns transport errors or the first [`NetError::ServerError`]
    /// in the batch.
    pub fn delete_many(&self, keys: &[&[u8]]) -> Result<u64, NetError> {
        if keys.is_empty() {
            return Ok(0);
        }
        self.with_failover(|| {
            let stream = self.checkout()?;
            let mut writer = BufWriter::new(stream.try_clone()?);
            for key in keys {
                write_command_unflushed(&mut writer, &Command::Delete { key: key.to_vec() })?;
            }
            writer.flush()?;
            let mut reader = BufReader::new(stream);
            let mut deleted = 0;
            for _ in keys {
                match read_response(&mut reader)? {
                    Response::Deleted => deleted += 1,
                    Response::NotFound => {}
                    Response::Error(msg) => return Err(NetError::ServerError(msg)),
                    other => return Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
                }
            }
            self.checkin(reader.into_inner());
            Ok(deleted)
        })
    }

    /// Retrieves the server's statistics as `(name, value)` pairs.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn stats(&self) -> Result<Vec<(String, String)>, NetError> {
        match self.round_trip(&Command::Stats)? {
            Response::Stats(pairs) => Ok(pairs),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Retrieves the server's full telemetry registry (`stats proteus`):
    /// engine counters, connection gauges, and per-command latency
    /// percentiles, flattened to `(name, value)` pairs.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn stats_proteus(&self) -> Result<Vec<(String, String)>, NetError> {
        match self.round_trip(&Command::StatsProteus)? {
            Response::Stats(pairs) => Ok(pairs),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Takes a fresh digest snapshot on the server and downloads it:
    /// `get SET_BLOOM_FILTER` followed by `get BLOOM_FILTER`, decoded
    /// into a [`BloomFilter`]. Returns `None` if the server answered
    /// with a miss (no snapshot available).
    ///
    /// # Errors
    ///
    /// Returns transport errors or a decode failure
    /// ([`NetError::BadDigest`]).
    pub fn snapshot_digest(&self) -> Result<Option<BloomFilter>, NetError> {
        let taken = self.get(DIGEST_SNAPSHOT_KEY)?;
        if taken.is_none() {
            return Ok(None);
        }
        self.fetch_digest()
    }

    /// Downloads the last digest snapshot (`get BLOOM_FILTER`) without
    /// taking a new one.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a decode failure.
    pub fn fetch_digest(&self) -> Result<Option<BloomFilter>, NetError> {
        match self.get(DIGEST_KEY)? {
            Some(bytes) => Ok(Some(DigestSnapshot::from_bytes(&bytes)?.into_filter())),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::CacheServer;
    use proteus_cache::CacheConfig;

    #[test]
    fn connect_fails_fast_when_no_server() {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        assert!(matches!(CacheClient::connect(addr), Err(NetError::Io(_))));
    }

    #[test]
    fn pool_reuses_connections() {
        let server =
            CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(1 << 20)).unwrap();
        let client = CacheClient::connect(server.addr()).unwrap();
        for i in 0..50u32 {
            client.set(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        // Sequential use should keep exactly one pooled connection.
        assert_eq!(client.pool.lock().len(), 1);
        // ... which means exactly one dial ever happened.
        assert_eq!(client.fault_stats().connects, 1);
        server.stop();
    }

    #[test]
    fn concurrent_clients_share_safely() {
        let server =
            CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(1 << 20)).unwrap();
        let client = std::sync::Arc::new(CacheClient::connect(server.addr()).unwrap());
        let mut handles = Vec::new();
        for t in 0..4 {
            let c = std::sync::Arc::clone(&client);
            handles.push(std::thread::spawn(move || {
                for i in 0..50u32 {
                    let key = format!("t{t}:{i}");
                    c.set(key.as_bytes(), key.as_bytes()).unwrap();
                    assert_eq!(
                        c.get(key.as_bytes()).unwrap().as_deref(),
                        Some(key.as_bytes())
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        server.stop();
    }

    #[test]
    fn delete_many_pipelines_and_counts_existing_keys() {
        let server =
            CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(1 << 20)).unwrap();
        let client = CacheClient::connect(server.addr()).unwrap();
        for i in 0..10u32 {
            client.set(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        // Half the batch exists, half never did.
        let keys: Vec<Vec<u8>> = (0..20u32).map(|i| format!("k{i}").into_bytes()).collect();
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        assert_eq!(client.delete_many(&refs).unwrap(), 10);
        for k in &refs {
            assert_eq!(client.get(k).unwrap(), None);
        }
        // Idempotent: a replay reports everything already gone.
        assert_eq!(client.delete_many(&refs).unwrap(), 0);
        assert_eq!(client.delete_many(&[]).unwrap(), 0);
        server.stop();
    }

    #[test]
    fn get_many_aligns_hits_and_misses() {
        let server =
            CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(1 << 20)).unwrap();
        let client = CacheClient::connect(server.addr()).unwrap();
        client.set(b"a", b"1").unwrap();
        client.set(b"c", b"3").unwrap();
        let got = client
            .get_many(&[
                b"a".as_slice(),
                b"b".as_slice(),
                b"c".as_slice(),
                b"a".as_slice(),
            ])
            .unwrap();
        let got: Vec<Option<&[u8]>> = got.iter().map(Option::as_deref).collect();
        assert_eq!(
            got,
            vec![Some(&b"1"[..]), None, Some(&b"3"[..]), Some(&b"1"[..])]
        );
        // Degenerate sizes.
        assert_eq!(
            client.get_many(&[]).unwrap(),
            Vec::<Option<SharedBytes>>::new()
        );
        assert_eq!(
            client.get_many(&[b"c".as_slice()]).unwrap()[0].as_deref(),
            Some(&b"3"[..])
        );
        assert_eq!(client.get_many(&[b"nope".as_slice()]).unwrap(), vec![None]);
        server.stop();
    }

    #[test]
    fn pipelined_gets_overlap_round_trips() {
        let server =
            CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(1 << 20)).unwrap();
        let client = CacheClient::connect(server.addr()).unwrap();
        for i in 0..10u32 {
            client
                .set(format!("k{i}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        // Send three batches before reading any response.
        let batches: Vec<Vec<Vec<u8>>> = (0..3)
            .map(|b| {
                (0..4)
                    .map(|i| format!("k{}", b * 3 + i).into_bytes())
                    .collect()
            })
            .collect();
        let pendings: Vec<_> = batches
            .iter()
            .map(|batch| {
                let refs: Vec<&[u8]> = batch.iter().map(Vec::as_slice).collect();
                client.send_get_many(&refs).unwrap()
            })
            .collect();
        for (batch, pending) in batches.iter().zip(pendings) {
            let got = client.recv_get_many(pending).unwrap();
            for (key, value) in batch.iter().zip(got) {
                let expect = format!("v{}", &String::from_utf8_lossy(key)[1..]);
                assert_eq!(value.as_deref(), Some(expect.as_bytes()), "key {key:?}");
            }
        }
        server.stop();
    }

    #[test]
    fn set_many_installs_every_pair_in_one_exchange() {
        let server =
            CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(1 << 20)).unwrap();
        let client = CacheClient::connect(server.addr()).unwrap();
        let pairs: Vec<(Vec<u8>, SharedBytes)> = (0..20u32)
            .map(|i| {
                (
                    format!("k{i}").into_bytes(),
                    SharedBytes::from(format!("v{i}").as_bytes()),
                )
            })
            .collect();
        let refs: Vec<(&[u8], SharedBytes)> = pairs
            .iter()
            .map(|(k, v)| (k.as_slice(), SharedBytes::clone(v)))
            .collect();
        client.set_many(&refs).unwrap();
        for (k, v) in &pairs {
            assert_eq!(client.get(k).unwrap().as_deref(), Some(&v[..]));
        }
        // The empty batch is a no-op, not a protocol exchange.
        client.set_many(&[]).unwrap();
        // The pipelined batch used one pooled connection throughout.
        assert_eq!(client.fault_stats().connects, 1);
        server.stop();
    }

    #[test]
    fn snapshot_digest_roundtrip() {
        let server =
            CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(1 << 20)).unwrap();
        let client = CacheClient::connect(server.addr()).unwrap();
        client.set(b"page:1", b"content").unwrap();
        let digest = client.snapshot_digest().unwrap().unwrap();
        assert!(digest.contains(b"page:1"));
        assert!(!digest.contains(b"page:2"));
        server.stop();
    }

    #[test]
    fn reconnects_when_pooled_connection_breaks() {
        let server =
            CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(1 << 20)).unwrap();
        let addr = server.addr();
        let client = CacheClient::connect_with(addr, ClientConfig::fast_failover()).unwrap();
        client.set(b"k", b"v").unwrap();
        // Kill the server; the pooled connection is now broken.
        server.stop();
        let server2 = CacheServer::spawn(addr, CacheConfig::with_capacity(1 << 20)).unwrap();
        // The stale pooled stream fails, the retry dials fresh, and the
        // operation succeeds against the restarted server.
        assert_eq!(client.get(b"k").unwrap(), None);
        let stats = client.fault_stats();
        assert!(stats.retries >= 1, "expected a retry, stats {stats:?}");
        assert!(stats.connects >= 2, "expected a reconnect, stats {stats:?}");
        server2.stop();
    }

    #[test]
    fn breaker_opens_after_consecutive_failures_and_recovers() {
        let server =
            CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(1 << 20)).unwrap();
        let addr = server.addr();
        let mut config = ClientConfig::fast_failover();
        config.breaker_cooldown = Duration::from_millis(100);
        let client = CacheClient::connect_with(addr, config).unwrap();
        client.set(b"k", b"v").unwrap();
        server.stop();

        // Failures accumulate until the breaker trips...
        let mut saw_io = 0;
        while !client.breaker_open() {
            match client.get(b"k") {
                Err(NetError::Io(_)) => saw_io += 1,
                other => panic!("expected Io failure against dead server, got {other:?}"),
            }
            assert!(saw_io < 10, "breaker never opened");
        }
        assert_eq!(client.fault_stats().breaker_trips, 1);
        // ...then operations fail fast without touching the network.
        let dials_when_open = client.fault_stats().connects;
        for _ in 0..20 {
            match client.get(b"k") {
                Err(NetError::CircuitOpen(a)) => assert_eq!(a, addr),
                other => panic!("expected CircuitOpen, got {other:?}"),
            }
        }
        assert_eq!(
            client.fault_stats().connects,
            dials_when_open,
            "open breaker must not dial"
        );
        assert!(client.fault_stats().fast_fails >= 20);

        // After the cooldown, a probe finds the restarted server and
        // the breaker closes again.
        let server2 = CacheServer::spawn(addr, CacheConfig::with_capacity(1 << 20)).unwrap();
        std::thread::sleep(Duration::from_millis(150));
        assert_eq!(client.get(b"k").unwrap(), None);
        assert!(!client.breaker_open());
        assert!(client.fault_stats().probes >= 1);
        client.set(b"k2", b"v2").unwrap();
        assert_eq!(client.get(b"k2").unwrap().as_deref(), Some(&b"v2"[..]));
        server2.stop();
    }

    #[test]
    fn server_errors_do_not_retry_or_trip_the_breaker() {
        let server =
            CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(1 << 20)).unwrap();
        let client =
            CacheClient::connect_with(server.addr(), ClientConfig::fast_failover()).unwrap();
        client.set(b"text", b"not-a-number").unwrap();
        for _ in 0..5 {
            assert!(matches!(
                client.incr(b"text", 1),
                Err(NetError::ServerError(_))
            ));
        }
        let stats = client.fault_stats();
        assert_eq!(stats.retries, 0, "semantic errors must not retry");
        assert_eq!(stats.breaker_trips, 0);
        assert!(!client.breaker_open());
        server.stop();
    }
}
