//! Blocking cache client with connection pooling.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use parking_lot::Mutex;
use proteus_bloom::{BloomFilter, DigestSnapshot};

use crate::error::NetError;
use crate::protocol::{
    read_response, write_command, Command, Response, DIGEST_KEY, DIGEST_SNAPSHOT_KEY,
};

/// A pooled, blocking client for one cache server.
///
/// Connections are created lazily, checked out per call, and returned
/// to the pool afterwards — the paper's web tier does the same with
/// Apache Commons Pool so servlet threads share connections.
///
/// `CacheClient` is `Send + Sync`; clone-free sharing via `&` works
/// from multiple threads.
///
/// # Example
///
/// ```no_run
/// use proteus_net::{CacheClient, CacheServer};
/// use proteus_cache::CacheConfig;
///
/// let server = CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(1 << 20))?;
/// let client = CacheClient::connect(server.addr())?;
/// client.set(b"k", b"v")?;
/// assert_eq!(client.get(b"k")?, Some(b"v".to_vec()));
/// # Ok::<(), proteus_net::NetError>(())
/// ```
#[derive(Debug)]
pub struct CacheClient {
    addr: SocketAddr,
    pool: Mutex<Vec<TcpStream>>,
    timeout: Duration,
}

impl CacheClient {
    /// Creates a client for the server at `addr` and verifies
    /// connectivity with one probe connection.
    ///
    /// # Errors
    ///
    /// Returns an error if the server is unreachable.
    pub fn connect(addr: SocketAddr) -> Result<CacheClient, NetError> {
        let client = CacheClient {
            addr,
            pool: Mutex::new(Vec::new()),
            timeout: Duration::from_secs(10),
        };
        let probe = client.checkout()?;
        client.checkin(probe);
        Ok(client)
    }

    /// The server address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn checkout(&self) -> Result<TcpStream, NetError> {
        if let Some(stream) = self.pool.lock().pop() {
            return Ok(stream);
        }
        let stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    fn checkin(&self, stream: TcpStream) {
        let mut pool = self.pool.lock();
        if pool.len() < 8 {
            pool.push(stream);
        }
    }

    fn round_trip(&self, cmd: &Command) -> Result<Response, NetError> {
        let stream = self.checkout()?;
        let mut writer = BufWriter::new(stream.try_clone()?);
        let mut reader = BufReader::new(stream);
        write_command(&mut writer, cmd)?;
        let response = read_response(&mut reader)?;
        // Only reusable if the exchange completed cleanly.
        self.checkin(reader.into_inner());
        match response {
            Response::Error(msg) => Err(NetError::ServerError(msg)),
            ok => Ok(ok),
        }
    }

    /// Fetches `key`, returning its value if cached.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, NetError> {
        match self.round_trip(&Command::Get { key: key.to_vec() })? {
            Response::Value { data, .. } => Ok(Some(data)),
            Response::Miss => Ok(None),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Stores `value` under `key`.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn set(&self, key: &[u8], value: &[u8]) -> Result<(), NetError> {
        match self.round_trip(&Command::Set {
            key: key.to_vec(),
            flags: 0,
            exptime: 0,
            data: value.to_vec(),
        })? {
            Response::Stored => Ok(()),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Stores `value` only if `key` is absent (`add`); returns whether
    /// it was stored.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn add(&self, key: &[u8], value: &[u8]) -> Result<bool, NetError> {
        match self.round_trip(&Command::Add {
            key: key.to_vec(),
            flags: 0,
            exptime: 0,
            data: value.to_vec(),
        })? {
            Response::Stored => Ok(true),
            Response::NotStored => Ok(false),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Stores `value` only if `key` is present (`replace`); returns
    /// whether it was stored.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn replace(&self, key: &[u8], value: &[u8]) -> Result<bool, NetError> {
        match self.round_trip(&Command::Replace {
            key: key.to_vec(),
            flags: 0,
            exptime: 0,
            data: value.to_vec(),
        })? {
            Response::Stored => Ok(true),
            Response::NotStored => Ok(false),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Refreshes `key`'s recency (`touch`); returns whether it existed.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn touch(&self, key: &[u8]) -> Result<bool, NetError> {
        match self.round_trip(&Command::Touch {
            key: key.to_vec(),
            exptime: 0,
        })? {
            Response::Touched => Ok(true),
            Response::NotFound => Ok(false),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Adds `delta` to the numeric value under `key`, returning the new
    /// value, or `None` if the key is absent.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`] (e.g.
    /// a non-numeric stored value).
    pub fn incr(&self, key: &[u8], delta: u64) -> Result<Option<u64>, NetError> {
        match self.round_trip(&Command::Incr {
            key: key.to_vec(),
            delta,
        })? {
            Response::Numeric(v) => Ok(Some(v)),
            Response::NotFound => Ok(None),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Subtracts `delta` from the numeric value under `key` (floored at
    /// zero), returning the new value, or `None` if the key is absent.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn decr(&self, key: &[u8], delta: u64) -> Result<Option<u64>, NetError> {
        match self.round_trip(&Command::Decr {
            key: key.to_vec(),
            delta,
        })? {
            Response::Numeric(v) => Ok(Some(v)),
            Response::NotFound => Ok(None),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Clears the server's cache (`flush_all`).
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn flush_all(&self) -> Result<(), NetError> {
        match self.round_trip(&Command::FlushAll)? {
            Response::Ok => Ok(()),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// The server's version string.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn version(&self) -> Result<String, NetError> {
        match self.round_trip(&Command::Version)? {
            Response::Version(v) => Ok(v),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Deletes `key`, returning whether it existed.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn delete(&self, key: &[u8]) -> Result<bool, NetError> {
        match self.round_trip(&Command::Delete { key: key.to_vec() })? {
            Response::Deleted => Ok(true),
            Response::NotFound => Ok(false),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Retrieves the server's statistics as `(name, value)` pairs.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn stats(&self) -> Result<Vec<(String, String)>, NetError> {
        match self.round_trip(&Command::Stats)? {
            Response::Stats(pairs) => Ok(pairs),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Takes a fresh digest snapshot on the server and downloads it:
    /// `get SET_BLOOM_FILTER` followed by `get BLOOM_FILTER`, decoded
    /// into a [`BloomFilter`]. Returns `None` if the server answered
    /// with a miss (no snapshot available).
    ///
    /// # Errors
    ///
    /// Returns transport errors or a decode failure
    /// ([`NetError::BadDigest`]).
    pub fn snapshot_digest(&self) -> Result<Option<BloomFilter>, NetError> {
        let taken = self.get(DIGEST_SNAPSHOT_KEY)?;
        if taken.is_none() {
            return Ok(None);
        }
        self.fetch_digest()
    }

    /// Downloads the last digest snapshot (`get BLOOM_FILTER`) without
    /// taking a new one.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a decode failure.
    pub fn fetch_digest(&self) -> Result<Option<BloomFilter>, NetError> {
        match self.get(DIGEST_KEY)? {
            Some(bytes) => Ok(Some(DigestSnapshot::from_bytes(&bytes)?.into_filter())),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::CacheServer;
    use proteus_cache::CacheConfig;

    #[test]
    fn connect_fails_fast_when_no_server() {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        assert!(matches!(CacheClient::connect(addr), Err(NetError::Io(_))));
    }

    #[test]
    fn pool_reuses_connections() {
        let server =
            CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(1 << 20)).unwrap();
        let client = CacheClient::connect(server.addr()).unwrap();
        for i in 0..50u32 {
            client.set(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        // Sequential use should keep exactly one pooled connection.
        assert_eq!(client.pool.lock().len(), 1);
        server.stop();
    }

    #[test]
    fn concurrent_clients_share_safely() {
        let server =
            CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(1 << 20)).unwrap();
        let client = std::sync::Arc::new(CacheClient::connect(server.addr()).unwrap());
        let mut handles = Vec::new();
        for t in 0..4 {
            let c = std::sync::Arc::clone(&client);
            handles.push(std::thread::spawn(move || {
                for i in 0..50u32 {
                    let key = format!("t{t}:{i}");
                    c.set(key.as_bytes(), key.as_bytes()).unwrap();
                    assert_eq!(c.get(key.as_bytes()).unwrap(), Some(key.into_bytes()));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        server.stop();
    }

    #[test]
    fn snapshot_digest_roundtrip() {
        let server =
            CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(1 << 20)).unwrap();
        let client = CacheClient::connect(server.addr()).unwrap();
        client.set(b"page:1", b"content").unwrap();
        let digest = client.snapshot_digest().unwrap().unwrap();
        assert!(digest.contains(b"page:1"));
        assert!(!digest.contains(b"page:2"));
        server.stop();
    }
}
