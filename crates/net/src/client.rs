//! Blocking cache client with connection pooling.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use parking_lot::Mutex;
use proteus_bloom::{BloomFilter, DigestSnapshot};

use crate::error::NetError;
use crate::protocol::{
    read_response, write_command, Command, Response, ValueItem, DIGEST_KEY, DIGEST_SNAPSHOT_KEY,
};

/// An in-flight multi-key get whose request has been written but whose
/// response has not yet been read. Produced by
/// [`CacheClient::send_get_many`]; redeem it with
/// [`CacheClient::recv_get_many`]. Holding several of these (one per
/// server) pipelines a batch: all requests go out before any response
/// is awaited.
#[derive(Debug)]
pub struct PendingGets {
    reader: BufReader<TcpStream>,
    keys: Vec<Vec<u8>>,
}

/// A pooled, blocking client for one cache server.
///
/// Connections are created lazily, checked out per call, and returned
/// to the pool afterwards — the paper's web tier does the same with
/// Apache Commons Pool so servlet threads share connections.
///
/// `CacheClient` is `Send + Sync`; clone-free sharing via `&` works
/// from multiple threads.
///
/// # Example
///
/// ```no_run
/// use proteus_net::{CacheClient, CacheServer};
/// use proteus_cache::CacheConfig;
///
/// let server = CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(1 << 20))?;
/// let client = CacheClient::connect(server.addr())?;
/// client.set(b"k", b"v")?;
/// assert_eq!(client.get(b"k")?, Some(b"v".to_vec()));
/// # Ok::<(), proteus_net::NetError>(())
/// ```
#[derive(Debug)]
pub struct CacheClient {
    addr: SocketAddr,
    pool: Mutex<Vec<TcpStream>>,
    timeout: Duration,
}

impl CacheClient {
    /// Creates a client for the server at `addr` and verifies
    /// connectivity with one probe connection.
    ///
    /// # Errors
    ///
    /// Returns an error if the server is unreachable.
    pub fn connect(addr: SocketAddr) -> Result<CacheClient, NetError> {
        let client = CacheClient {
            addr,
            pool: Mutex::new(Vec::new()),
            timeout: Duration::from_secs(10),
        };
        let probe = client.checkout()?;
        client.checkin(probe);
        Ok(client)
    }

    /// The server address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn checkout(&self) -> Result<TcpStream, NetError> {
        if let Some(stream) = self.pool.lock().pop() {
            return Ok(stream);
        }
        let stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    fn checkin(&self, stream: TcpStream) {
        let mut pool = self.pool.lock();
        if pool.len() < 8 {
            pool.push(stream);
        }
    }

    fn round_trip(&self, cmd: &Command) -> Result<Response, NetError> {
        let stream = self.checkout()?;
        let mut writer = BufWriter::new(stream.try_clone()?);
        let mut reader = BufReader::new(stream);
        write_command(&mut writer, cmd)?;
        let response = read_response(&mut reader)?;
        // Only reusable if the exchange completed cleanly.
        self.checkin(reader.into_inner());
        match response {
            Response::Error(msg) => Err(NetError::ServerError(msg)),
            ok => Ok(ok),
        }
    }

    /// Fetches `key`, returning its value if cached.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, NetError> {
        match self.round_trip(&Command::Get { key: key.to_vec() })? {
            Response::Value { data, .. } => Ok(Some(data)),
            Response::Miss => Ok(None),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Fetches several keys in one request/response round trip
    /// (memcached `get k1 k2 ...`). Results align with `keys`: position
    /// `i` holds `Some(value)` if `keys[i]` was cached, `None` if not.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn get_many(&self, keys: &[&[u8]]) -> Result<Vec<Option<Vec<u8>>>, NetError> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        let pending = self.send_get_many(keys)?;
        self.recv_get_many(pending)
    }

    /// Writes a multi-key get and returns without waiting for the
    /// response. Each call uses its own pooled connection, so sending
    /// to several servers (or several batches) first and receiving
    /// afterwards overlaps the round trips.
    ///
    /// # Errors
    ///
    /// Returns transport errors, or [`NetError::Protocol`] if `keys`
    /// is empty.
    pub fn send_get_many(&self, keys: &[&[u8]]) -> Result<PendingGets, NetError> {
        if keys.is_empty() {
            return Err(NetError::Protocol("get_many needs at least one key".into()));
        }
        let owned: Vec<Vec<u8>> = keys.iter().map(|k| k.to_vec()).collect();
        let cmd = if owned.len() == 1 {
            Command::Get {
                key: owned[0].clone(),
            }
        } else {
            Command::MultiGet {
                keys: owned.clone(),
            }
        };
        let stream = self.checkout()?;
        let mut writer = BufWriter::new(stream.try_clone()?);
        write_command(&mut writer, &cmd)?;
        Ok(PendingGets {
            reader: BufReader::new(stream),
            keys: owned,
        })
    }

    /// Reads the response for a [`send_get_many`](Self::send_get_many)
    /// and returns values aligned with the keys that were sent.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn recv_get_many(&self, pending: PendingGets) -> Result<Vec<Option<Vec<u8>>>, NetError> {
        let PendingGets { mut reader, keys } = pending;
        let response = read_response(&mut reader)?;
        self.checkin(reader.into_inner());
        let items = match response {
            Response::Error(msg) => return Err(NetError::ServerError(msg)),
            Response::Miss => Vec::new(),
            Response::Value { key, flags, data } => vec![ValueItem { key, flags, data }],
            Response::Values(items) => items,
            other => return Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        };
        let found: std::collections::HashMap<Vec<u8>, Vec<u8>> =
            items.into_iter().map(|i| (i.key, i.data)).collect();
        Ok(keys.iter().map(|k| found.get(k).cloned()).collect())
    }

    /// Stores `value` under `key`.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn set(&self, key: &[u8], value: &[u8]) -> Result<(), NetError> {
        match self.round_trip(&Command::Set {
            key: key.to_vec(),
            flags: 0,
            exptime: 0,
            data: value.to_vec(),
        })? {
            Response::Stored => Ok(()),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Stores `value` only if `key` is absent (`add`); returns whether
    /// it was stored.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn add(&self, key: &[u8], value: &[u8]) -> Result<bool, NetError> {
        match self.round_trip(&Command::Add {
            key: key.to_vec(),
            flags: 0,
            exptime: 0,
            data: value.to_vec(),
        })? {
            Response::Stored => Ok(true),
            Response::NotStored => Ok(false),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Stores `value` only if `key` is present (`replace`); returns
    /// whether it was stored.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn replace(&self, key: &[u8], value: &[u8]) -> Result<bool, NetError> {
        match self.round_trip(&Command::Replace {
            key: key.to_vec(),
            flags: 0,
            exptime: 0,
            data: value.to_vec(),
        })? {
            Response::Stored => Ok(true),
            Response::NotStored => Ok(false),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Refreshes `key`'s recency (`touch`); returns whether it existed.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn touch(&self, key: &[u8]) -> Result<bool, NetError> {
        match self.round_trip(&Command::Touch {
            key: key.to_vec(),
            exptime: 0,
        })? {
            Response::Touched => Ok(true),
            Response::NotFound => Ok(false),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Adds `delta` to the numeric value under `key`, returning the new
    /// value, or `None` if the key is absent.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`] (e.g.
    /// a non-numeric stored value).
    pub fn incr(&self, key: &[u8], delta: u64) -> Result<Option<u64>, NetError> {
        match self.round_trip(&Command::Incr {
            key: key.to_vec(),
            delta,
        })? {
            Response::Numeric(v) => Ok(Some(v)),
            Response::NotFound => Ok(None),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Subtracts `delta` from the numeric value under `key` (floored at
    /// zero), returning the new value, or `None` if the key is absent.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn decr(&self, key: &[u8], delta: u64) -> Result<Option<u64>, NetError> {
        match self.round_trip(&Command::Decr {
            key: key.to_vec(),
            delta,
        })? {
            Response::Numeric(v) => Ok(Some(v)),
            Response::NotFound => Ok(None),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Clears the server's cache (`flush_all`).
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn flush_all(&self) -> Result<(), NetError> {
        match self.round_trip(&Command::FlushAll)? {
            Response::Ok => Ok(()),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// The server's version string.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn version(&self) -> Result<String, NetError> {
        match self.round_trip(&Command::Version)? {
            Response::Version(v) => Ok(v),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Deletes `key`, returning whether it existed.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn delete(&self, key: &[u8]) -> Result<bool, NetError> {
        match self.round_trip(&Command::Delete { key: key.to_vec() })? {
            Response::Deleted => Ok(true),
            Response::NotFound => Ok(false),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Retrieves the server's statistics as `(name, value)` pairs.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a [`NetError::ServerError`].
    pub fn stats(&self) -> Result<Vec<(String, String)>, NetError> {
        match self.round_trip(&Command::Stats)? {
            Response::Stats(pairs) => Ok(pairs),
            other => Err(NetError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Takes a fresh digest snapshot on the server and downloads it:
    /// `get SET_BLOOM_FILTER` followed by `get BLOOM_FILTER`, decoded
    /// into a [`BloomFilter`]. Returns `None` if the server answered
    /// with a miss (no snapshot available).
    ///
    /// # Errors
    ///
    /// Returns transport errors or a decode failure
    /// ([`NetError::BadDigest`]).
    pub fn snapshot_digest(&self) -> Result<Option<BloomFilter>, NetError> {
        let taken = self.get(DIGEST_SNAPSHOT_KEY)?;
        if taken.is_none() {
            return Ok(None);
        }
        self.fetch_digest()
    }

    /// Downloads the last digest snapshot (`get BLOOM_FILTER`) without
    /// taking a new one.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a decode failure.
    pub fn fetch_digest(&self) -> Result<Option<BloomFilter>, NetError> {
        match self.get(DIGEST_KEY)? {
            Some(bytes) => Ok(Some(DigestSnapshot::from_bytes(&bytes)?.into_filter())),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::CacheServer;
    use proteus_cache::CacheConfig;

    #[test]
    fn connect_fails_fast_when_no_server() {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        assert!(matches!(CacheClient::connect(addr), Err(NetError::Io(_))));
    }

    #[test]
    fn pool_reuses_connections() {
        let server =
            CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(1 << 20)).unwrap();
        let client = CacheClient::connect(server.addr()).unwrap();
        for i in 0..50u32 {
            client.set(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        // Sequential use should keep exactly one pooled connection.
        assert_eq!(client.pool.lock().len(), 1);
        server.stop();
    }

    #[test]
    fn concurrent_clients_share_safely() {
        let server =
            CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(1 << 20)).unwrap();
        let client = std::sync::Arc::new(CacheClient::connect(server.addr()).unwrap());
        let mut handles = Vec::new();
        for t in 0..4 {
            let c = std::sync::Arc::clone(&client);
            handles.push(std::thread::spawn(move || {
                for i in 0..50u32 {
                    let key = format!("t{t}:{i}");
                    c.set(key.as_bytes(), key.as_bytes()).unwrap();
                    assert_eq!(c.get(key.as_bytes()).unwrap(), Some(key.into_bytes()));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        server.stop();
    }

    #[test]
    fn get_many_aligns_hits_and_misses() {
        let server =
            CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(1 << 20)).unwrap();
        let client = CacheClient::connect(server.addr()).unwrap();
        client.set(b"a", b"1").unwrap();
        client.set(b"c", b"3").unwrap();
        let got = client
            .get_many(&[
                b"a".as_slice(),
                b"b".as_slice(),
                b"c".as_slice(),
                b"a".as_slice(),
            ])
            .unwrap();
        assert_eq!(
            got,
            vec![
                Some(b"1".to_vec()),
                None,
                Some(b"3".to_vec()),
                Some(b"1".to_vec()),
            ]
        );
        // Degenerate sizes.
        assert_eq!(client.get_many(&[]).unwrap(), Vec::<Option<Vec<u8>>>::new());
        assert_eq!(
            client.get_many(&[b"c".as_slice()]).unwrap(),
            vec![Some(b"3".to_vec())]
        );
        assert_eq!(client.get_many(&[b"nope".as_slice()]).unwrap(), vec![None]);
        server.stop();
    }

    #[test]
    fn pipelined_gets_overlap_round_trips() {
        let server =
            CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(1 << 20)).unwrap();
        let client = CacheClient::connect(server.addr()).unwrap();
        for i in 0..10u32 {
            client
                .set(format!("k{i}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        // Send three batches before reading any response.
        let batches: Vec<Vec<Vec<u8>>> = (0..3)
            .map(|b| {
                (0..4)
                    .map(|i| format!("k{}", b * 3 + i).into_bytes())
                    .collect()
            })
            .collect();
        let pendings: Vec<_> = batches
            .iter()
            .map(|batch| {
                let refs: Vec<&[u8]> = batch.iter().map(Vec::as_slice).collect();
                client.send_get_many(&refs).unwrap()
            })
            .collect();
        for (batch, pending) in batches.iter().zip(pendings) {
            let got = client.recv_get_many(pending).unwrap();
            for (key, value) in batch.iter().zip(got) {
                let expect = format!("v{}", &String::from_utf8_lossy(key)[1..]);
                assert_eq!(value, Some(expect.into_bytes()), "key {key:?}");
            }
        }
        server.stop();
    }

    #[test]
    fn snapshot_digest_roundtrip() {
        let server =
            CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(1 << 20)).unwrap();
        let client = CacheClient::connect(server.addr()).unwrap();
        client.set(b"page:1", b"content").unwrap();
        let digest = client.snapshot_digest().unwrap().unwrap();
        assert!(digest.contains(b"page:1"));
        assert!(!digest.contains(b"page:2"));
        server.stop();
    }
}
