//! Robustness tests of the TCP server against awkward clients.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use proteus_cache::CacheConfig;
use proteus_net::{CacheClient, CacheServer};

fn server() -> CacheServer {
    CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(128 << 20)).unwrap()
}

fn read_line(reader: &mut impl BufRead) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    line.trim_end().to_string()
}

/// Pipelining: a client may write several commands before reading any
/// response; replies come back in order.
#[test]
fn pipelined_commands_answer_in_order() {
    let server = server();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(b"set a 0 0 1\r\n1\r\nset b 0 0 1\r\n2\r\nget a\r\nget b\r\nget c\r\n")
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    assert_eq!(read_line(&mut reader), "STORED");
    assert_eq!(read_line(&mut reader), "STORED");
    assert_eq!(read_line(&mut reader), "VALUE a 0 1");
    assert_eq!(read_line(&mut reader), "1");
    assert_eq!(read_line(&mut reader), "END");
    assert_eq!(read_line(&mut reader), "VALUE b 0 1");
    assert_eq!(read_line(&mut reader), "2");
    assert_eq!(read_line(&mut reader), "END");
    assert_eq!(read_line(&mut reader), "END"); // miss for c
    server.stop();
}

/// Values arriving in many small writes (slow client) are reassembled.
#[test]
fn dribbled_writes_are_reassembled() {
    let server = server();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let payload = b"set slow 0 0 10\r\n0123456789\r\nget slow\r\n";
    for chunk in payload.chunks(3) {
        stream.write_all(chunk).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    assert_eq!(read_line(&mut reader), "STORED");
    assert_eq!(read_line(&mut reader), "VALUE slow 0 10");
    assert_eq!(read_line(&mut reader), "0123456789");
    server.stop();
}

/// A multi-megabyte value survives the round trip intact.
#[test]
fn large_values_round_trip() {
    let server = server();
    let client = CacheClient::connect(server.addr()).unwrap();
    let value: Vec<u8> = (0..4 << 20).map(|i| (i % 249) as u8).collect();
    client.set(b"big", &value).unwrap();
    assert_eq!(client.get(b"big").unwrap().as_deref(), Some(&value[..]));
    server.stop();
}

/// A client that disconnects mid-command must not take the server (or
/// other clients) down.
#[test]
fn disconnect_mid_command_is_isolated() {
    let server = server();
    {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // Announce 100 bytes but send only 3 and hang up.
        stream.write_all(b"set truncated 0 0 100\r\nabc").unwrap();
    } // dropped: RST/FIN mid-body
    std::thread::sleep(Duration::from_millis(50));
    let client = CacheClient::connect(server.addr()).unwrap();
    client.set(b"after", b"fine").unwrap();
    assert_eq!(client.get(b"after").unwrap().as_deref(), Some(&b"fine"[..]));
    assert_eq!(client.get(b"truncated").unwrap(), None);
    server.stop();
}

/// Declaring an absurd value length is rejected before any allocation
/// of that size happens.
#[test]
fn oversized_declared_length_is_rejected() {
    let server = server();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(b"set bomb 0 0 99999999999\r\n").unwrap();
    let mut response = String::new();
    BufReader::new(stream)
        .read_to_string(&mut response)
        .unwrap();
    assert!(response.starts_with("ERROR"), "got {response:?}");
    server.stop();
}

/// Many sequential connections (connect, one op, quit) don't exhaust
/// the server.
#[test]
fn connection_churn() {
    let server = server();
    for i in 0..50u32 {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(format!("set churn{i} 0 0 1\r\nx\r\nquit\r\n").as_bytes())
            .unwrap();
        let mut reader = BufReader::new(stream);
        assert_eq!(read_line(&mut reader), "STORED");
    }
    let client = CacheClient::connect(server.addr()).unwrap();
    let stats = client.stats().unwrap();
    let items: u64 = stats
        .iter()
        .find(|(k, _)| k == "curr_items")
        .map(|(_, v)| v.parse().unwrap())
        .unwrap();
    assert_eq!(items, 50);
    server.stop();
}
