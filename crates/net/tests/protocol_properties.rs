//! Property tests of the wire protocol: round trips and fuzz safety.

use proptest::prelude::*;
use proteus_net::{Command, Response};

/// Strategy for protocol-legal keys (printable, no whitespace, ≤250).
fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(33u8..=126, 1..64).prop_filter("no DEL", |k| !k.contains(&127))
}

fn value_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..512)
}

fn command_strategy() -> impl Strategy<Value = Command> {
    prop_oneof![
        key_strategy().prop_map(|key| Command::Get { key }),
        (key_strategy(), any::<u32>(), any::<u32>(), value_strategy()).prop_map(
            |(key, flags, exptime, data)| Command::Set {
                key,
                flags,
                exptime,
                data: data.into()
            }
        ),
        (key_strategy(), any::<u32>(), any::<u32>(), value_strategy()).prop_map(
            |(key, flags, exptime, data)| Command::Add {
                key,
                flags,
                exptime,
                data: data.into()
            }
        ),
        (key_strategy(), any::<u32>(), any::<u32>(), value_strategy()).prop_map(
            |(key, flags, exptime, data)| Command::Replace {
                key,
                flags,
                exptime,
                data: data.into()
            }
        ),
        key_strategy().prop_map(|key| Command::Delete { key }),
        (key_strategy(), any::<u32>()).prop_map(|(key, exptime)| Command::Touch { key, exptime }),
        (key_strategy(), any::<u64>()).prop_map(|(key, delta)| Command::Incr { key, delta }),
        (key_strategy(), any::<u64>()).prop_map(|(key, delta)| Command::Decr { key, delta }),
        Just(Command::Stats),
        Just(Command::FlushAll),
        Just(Command::Version),
        Just(Command::Quit),
    ]
}

fn response_strategy() -> impl Strategy<Value = Response> {
    let stat_pair = ("[a-z_]{1,16}", "[a-zA-Z0-9._-]{1,16}").prop_map(|(k, v)| (k, v));
    prop_oneof![
        (key_strategy(), any::<u32>(), value_strategy()).prop_map(|(key, flags, data)| {
            Response::Value {
                key,
                flags,
                data: data.into(),
            }
        }),
        Just(Response::Miss),
        Just(Response::Stored),
        Just(Response::NotStored),
        Just(Response::Deleted),
        Just(Response::NotFound),
        Just(Response::Touched),
        any::<u64>().prop_map(Response::Numeric),
        Just(Response::Ok),
        "[ -~]{0,40}".prop_map(Response::Version),
        prop::collection::vec(stat_pair, 1..8).prop_map(Response::Stats),
        "[ -~]{0,40}".prop_map(Response::Error),
    ]
}

proptest! {
    /// Every command the client can emit parses back identically.
    #[test]
    fn command_roundtrip(cmd in command_strategy()) {
        let mut buf = Vec::new();
        proteus_net::write_command(&mut buf, &cmd).unwrap();
        let parsed = proteus_net::read_command(&mut &buf[..]).unwrap();
        prop_assert_eq!(parsed, cmd);
    }

    /// Every response the server can emit parses back identically —
    /// modulo the CR/LF normalisation applied to free-text fields.
    #[test]
    fn response_roundtrip(resp in response_strategy()) {
        let mut buf = Vec::new();
        proteus_net::write_response(&mut buf, &resp).unwrap();
        let parsed = proteus_net::read_response(&mut &buf[..]).unwrap();
        prop_assert_eq!(parsed, resp);
    }

    /// Arbitrary bytes never panic the command parser; they either
    /// parse or yield a structured error.
    #[test]
    fn command_parser_is_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = proteus_net::read_command(&mut &bytes[..]);
    }

    /// Arbitrary bytes never panic the response parser.
    #[test]
    fn response_parser_is_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = proteus_net::read_response(&mut &bytes[..]);
    }

    /// Arbitrary *text lines* (the realistic fuzz surface) never panic
    /// either parser.
    #[test]
    fn parsers_survive_text_lines(line in "[ -~]{0,120}") {
        let framed = format!("{line}\r\n");
        let _ = proteus_net::read_command(&mut framed.as_bytes());
        let _ = proteus_net::read_response(&mut framed.as_bytes());
    }
}
