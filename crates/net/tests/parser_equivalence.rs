//! The borrow-based command parser accepts and rejects exactly the
//! same byte streams as the owned parser it replaced.
//!
//! The `reference` module below is a verbatim transplant of the
//! pre-rewrite parser (byte-at-a-time `read_line`, owned keys). The
//! properties drive the old and new parsers over the same inputs in
//! lockstep — well-formed pipelines, arbitrary bytes, and mutated
//! valid streams — and require identical verdicts: the same commands,
//! the same number of bytes consumed on success, and the same error
//! class (protocol vs I/O) on rejection.

use proptest::prelude::*;
use proteus_net::{read_raw_command, Command, NetError, WireBuf};

/// The pre-rewrite parser, kept as the behavioral oracle.
mod reference {
    use std::io::BufRead;

    use proteus_net::{Command, NetError};

    fn valid_key(key: &[u8]) -> bool {
        !key.is_empty() && key.len() <= 250 && key.iter().all(|&b| b > 32 && b != 127)
    }

    fn read_line<R: BufRead>(reader: &mut R, out: &mut Vec<u8>) -> Result<(), NetError> {
        out.clear();
        loop {
            let mut byte = [0u8; 1];
            reader.read_exact(&mut byte)?;
            if byte[0] == b'\n' {
                if out.last() == Some(&b'\r') {
                    out.pop();
                }
                return Ok(());
            }
            out.push(byte[0]);
            if out.len() > 1 << 20 {
                return Err(NetError::Protocol("line too long".into()));
            }
        }
    }

    fn parse_field<T: std::str::FromStr>(field: Option<&str>, name: &str) -> Result<T, NetError> {
        field
            .ok_or_else(|| NetError::Protocol(format!("missing {name}")))?
            .parse()
            .map_err(|_| NetError::Protocol(format!("malformed {name}")))
    }

    fn read_data_block<R: BufRead>(reader: &mut R, bytes: usize) -> Result<Vec<u8>, NetError> {
        if bytes > 64 << 20 {
            return Err(NetError::Protocol("value too large".into()));
        }
        let mut data = vec![0u8; bytes];
        reader.read_exact(&mut data)?;
        let mut crlf = [0u8; 2];
        reader.read_exact(&mut crlf)?;
        if &crlf != b"\r\n" {
            return Err(NetError::Protocol("data block not CRLF-terminated".into()));
        }
        Ok(data)
    }

    pub fn read_command<R: BufRead>(reader: &mut R) -> Result<Command, NetError> {
        let mut line = Vec::new();
        read_line(reader, &mut line)?;
        let text = std::str::from_utf8(&line)
            .map_err(|_| NetError::Protocol("command line is not UTF-8".into()))?;
        let mut parts = text.split_ascii_whitespace();
        let verb = parts
            .next()
            .ok_or_else(|| NetError::Protocol("empty command".into()))?;
        match verb {
            "get" => {
                let keys: Vec<Vec<u8>> = parts.map(|p| p.as_bytes().to_vec()).collect();
                if keys.is_empty() {
                    return Err(NetError::Protocol("get needs a key".into()));
                }
                if keys.len() > 1024 {
                    return Err(NetError::Protocol("too many keys in one get".into()));
                }
                if keys.iter().any(|k| !valid_key(k)) {
                    return Err(NetError::Protocol("invalid key".into()));
                }
                if keys.len() == 1 {
                    let key = keys.into_iter().next().expect("one key");
                    Ok(Command::Get { key })
                } else {
                    Ok(Command::MultiGet { keys })
                }
            }
            "set" | "add" | "replace" => {
                let key = parts
                    .next()
                    .ok_or_else(|| NetError::Protocol("storage command needs a key".into()))?
                    .as_bytes()
                    .to_vec();
                if !valid_key(&key) {
                    return Err(NetError::Protocol("invalid key".into()));
                }
                let flags: u32 = parse_field(parts.next(), "flags")?;
                let exptime: u32 = parse_field(parts.next(), "exptime")?;
                let bytes: usize = parse_field(parts.next(), "bytes")?;
                let data = read_data_block(reader, bytes)?.into();
                Ok(match verb {
                    "set" => Command::Set {
                        key,
                        flags,
                        exptime,
                        data,
                    },
                    "add" => Command::Add {
                        key,
                        flags,
                        exptime,
                        data,
                    },
                    _ => Command::Replace {
                        key,
                        flags,
                        exptime,
                        data,
                    },
                })
            }
            "delete" => {
                let key = parts
                    .next()
                    .ok_or_else(|| NetError::Protocol("delete needs a key".into()))?
                    .as_bytes()
                    .to_vec();
                if !valid_key(&key) {
                    return Err(NetError::Protocol("invalid key".into()));
                }
                Ok(Command::Delete { key })
            }
            "touch" => {
                let key = parts
                    .next()
                    .ok_or_else(|| NetError::Protocol("touch needs a key".into()))?
                    .as_bytes()
                    .to_vec();
                if !valid_key(&key) {
                    return Err(NetError::Protocol("invalid key".into()));
                }
                let exptime: u32 = parse_field(parts.next(), "exptime")?;
                Ok(Command::Touch { key, exptime })
            }
            "incr" | "decr" => {
                let key = parts
                    .next()
                    .ok_or_else(|| NetError::Protocol("incr/decr needs a key".into()))?
                    .as_bytes()
                    .to_vec();
                if !valid_key(&key) {
                    return Err(NetError::Protocol("invalid key".into()));
                }
                let delta: u64 = parse_field(parts.next(), "delta")?;
                if verb == "incr" {
                    Ok(Command::Incr { key, delta })
                } else {
                    Ok(Command::Decr { key, delta })
                }
            }
            // `stats proteus` postdates the parser rewrite; it is
            // mirrored here so the oracle tracks the live grammar.
            "stats" => match parts.next() {
                Some("proteus") => Ok(Command::StatsProteus),
                _ => Ok(Command::Stats),
            },
            "flush_all" => Ok(Command::FlushAll),
            "version" => Ok(Command::Version),
            "quit" => Ok(Command::Quit),
            other => Err(NetError::Protocol(format!("unknown verb {other:?}"))),
        }
    }
}

/// The error classes the equivalence check distinguishes. Error
/// *messages* may differ between the parsers; the class may not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ErrClass {
    Protocol,
    Io,
}

fn classify(err: &NetError) -> ErrClass {
    match err {
        NetError::Protocol(_) => ErrClass::Protocol,
        _ => ErrClass::Io,
    }
}

/// Drives both parsers over `stream` in lockstep until the first
/// rejection, asserting identical commands, identical bytes consumed
/// after every accepted command, and the same error class at the end.
fn assert_parsers_agree(stream: &[u8]) -> Result<(), TestCaseError> {
    let mut old_input = stream;
    let mut new_input = stream;
    let mut buf = WireBuf::new();
    loop {
        let old = reference::read_command(&mut old_input);
        let new = read_raw_command(&mut new_input, &mut buf).map(|raw| raw.into_owned());
        match (old, new) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(&a, &b, "parsers disagree on the command");
                prop_assert_eq!(
                    old_input.len(),
                    new_input.len(),
                    "parsers consumed different byte counts after {:?}",
                    a
                );
            }
            (Err(a), Err(b)) => {
                prop_assert_eq!(
                    classify(&a),
                    classify(&b),
                    "different rejection class: old {:?} vs new {:?}",
                    a,
                    b
                );
                return Ok(());
            }
            (a, b) => {
                return Err(TestCaseError::fail(format!(
                    "one parser accepted what the other rejected: old {a:?} vs new {b:?}"
                )));
            }
        }
    }
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Printable ASCII: the command line must be UTF-8, so bytes ≥ 128
    // only form parseable keys in multi-byte sequences — those are
    // covered by the arbitrary-bytes and mutation properties below.
    prop::collection::vec(33u8..=126, 1..40)
}

fn value_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..256)
}

fn command_strategy() -> impl Strategy<Value = Command> {
    prop_oneof![
        key_strategy().prop_map(|key| Command::Get { key }),
        prop::collection::vec(key_strategy(), 2..6).prop_map(|keys| Command::MultiGet { keys }),
        (key_strategy(), any::<u32>(), any::<u32>(), value_strategy()).prop_map(
            |(key, flags, exptime, data)| Command::Set {
                key,
                flags,
                exptime,
                data: data.into()
            }
        ),
        (key_strategy(), any::<u32>(), any::<u32>(), value_strategy()).prop_map(
            |(key, flags, exptime, data)| Command::Add {
                key,
                flags,
                exptime,
                data: data.into()
            }
        ),
        (key_strategy(), any::<u32>(), any::<u32>(), value_strategy()).prop_map(
            |(key, flags, exptime, data)| Command::Replace {
                key,
                flags,
                exptime,
                data: data.into()
            }
        ),
        key_strategy().prop_map(|key| Command::Delete { key }),
        (key_strategy(), any::<u32>()).prop_map(|(key, exptime)| Command::Touch { key, exptime }),
        (key_strategy(), any::<u64>()).prop_map(|(key, delta)| Command::Incr { key, delta }),
        (key_strategy(), any::<u64>()).prop_map(|(key, delta)| Command::Decr { key, delta }),
        Just(Command::Stats),
        Just(Command::StatsProteus),
        Just(Command::FlushAll),
        Just(Command::Version),
        Just(Command::Quit),
    ]
}

proptest! {
    /// Well-formed pipelined streams: every command parses identically
    /// through old and new, sharing one `WireBuf` across the pipeline.
    #[test]
    fn valid_pipelines_parse_identically(
        cmds in prop::collection::vec(command_strategy(), 1..8),
    ) {
        let mut stream = Vec::new();
        for cmd in &cmds {
            proteus_net::write_command(&mut stream, cmd).unwrap();
        }
        assert_parsers_agree(&stream)?;
        // And the accepted prefix is the whole pipeline: re-parse with
        // the new parser alone and count.
        let mut input = &stream[..];
        let mut buf = WireBuf::new();
        for cmd in &cmds {
            let parsed = read_raw_command(&mut input, &mut buf).unwrap().into_owned();
            prop_assert_eq!(&parsed, cmd);
        }
    }

    /// Arbitrary bytes: both parsers reach the same verdict.
    #[test]
    fn arbitrary_bytes_get_the_same_verdict(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        assert_parsers_agree(&bytes)?;
    }

    /// Arbitrary text lines (the realistic fuzz surface: garbage that
    /// is at least CRLF-framed).
    #[test]
    fn text_lines_get_the_same_verdict(lines in prop::collection::vec("[ -~]{0,80}", 1..5)) {
        let mut stream = Vec::new();
        for line in &lines {
            stream.extend_from_slice(line.as_bytes());
            stream.extend_from_slice(b"\r\n");
        }
        assert_parsers_agree(&stream)?;
    }

    /// Mutated valid streams: flip one byte or truncate a well-formed
    /// command — the parsers must still agree on accept vs reject.
    #[test]
    fn mutated_streams_get_the_same_verdict(
        cmd in command_strategy(),
        flip_at in any::<usize>(),
        flip_to in any::<u8>(),
        cut in any::<usize>(),
    ) {
        let mut stream = Vec::new();
        proteus_net::write_command(&mut stream, &cmd).unwrap();

        let mut flipped = stream.clone();
        let i = flip_at % flipped.len();
        flipped[i] = flip_to;
        assert_parsers_agree(&flipped)?;

        let truncated = &stream[..cut % (stream.len() + 1)];
        assert_parsers_agree(truncated)?;
    }
}
