//! Tests of the extended memcached command surface over live sockets.

use proteus_cache::{CacheConfig, StorageKind};
use proteus_net::{CacheClient, CacheServer, NetError};

fn server() -> CacheServer {
    CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(1 << 20)).unwrap()
}

#[test]
fn add_stores_only_when_absent() {
    let server = server();
    let client = CacheClient::connect(server.addr()).unwrap();
    assert!(client.add(b"k", b"first").unwrap());
    assert!(!client.add(b"k", b"second").unwrap());
    assert_eq!(client.get(b"k").unwrap().as_deref(), Some(&b"first"[..]));
    server.stop();
}

#[test]
fn replace_stores_only_when_present() {
    let server = server();
    let client = CacheClient::connect(server.addr()).unwrap();
    assert!(!client.replace(b"k", b"nope").unwrap());
    client.set(b"k", b"old").unwrap();
    assert!(client.replace(b"k", b"new").unwrap());
    assert_eq!(client.get(b"k").unwrap().as_deref(), Some(&b"new"[..]));
    server.stop();
}

#[test]
fn touch_refreshes_and_reports_presence() {
    let server = server();
    let client = CacheClient::connect(server.addr()).unwrap();
    client.set(b"k", b"v").unwrap();
    assert!(client.touch(b"k").unwrap());
    assert!(!client.touch(b"missing").unwrap());
    server.stop();
}

#[test]
fn incr_decr_arithmetic() {
    let server = server();
    let client = CacheClient::connect(server.addr()).unwrap();
    client.set(b"counter", b"10").unwrap();
    assert_eq!(client.incr(b"counter", 5).unwrap(), Some(15));
    assert_eq!(client.decr(b"counter", 3).unwrap(), Some(12));
    // Floors at zero, memcached-style.
    assert_eq!(client.decr(b"counter", 100).unwrap(), Some(0));
    // Missing key.
    assert_eq!(client.incr(b"absent", 1).unwrap(), None);
    // The stored value is the ASCII rendering.
    assert_eq!(client.get(b"counter").unwrap().as_deref(), Some(&b"0"[..]));
    server.stop();
}

#[test]
fn incr_on_non_numeric_value_is_a_server_error() {
    let server = server();
    let client = CacheClient::connect(server.addr()).unwrap();
    client.set(b"text", b"hello").unwrap();
    match client.incr(b"text", 1) {
        Err(NetError::ServerError(msg)) => assert!(msg.contains("non-numeric")),
        other => panic!("expected server error, got {other:?}"),
    }
    server.stop();
}

#[test]
fn flush_all_clears_everything_including_digest() {
    let server = server();
    let client = CacheClient::connect(server.addr()).unwrap();
    for i in 0..50u32 {
        client.set(format!("k{i}").as_bytes(), b"v").unwrap();
    }
    client.flush_all().unwrap();
    assert_eq!(client.get(b"k0").unwrap(), None);
    let digest = client.snapshot_digest().unwrap().unwrap();
    assert!(!digest.contains(b"k0"), "digest cleared with the cache");
    assert_eq!(server.with_engine(|e| e.len()), 0);
    server.stop();
}

#[test]
fn exptime_is_honored_over_the_wire() {
    use proteus_net::{read_response, write_command, Command, Response};
    use std::io::{BufReader, BufWriter};
    let server = server();
    let stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut writer = BufWriter::new(stream.try_clone().unwrap());
    let mut reader = BufReader::new(stream);
    // Store with a 1-second expiry.
    write_command(
        &mut writer,
        &Command::Set {
            key: b"ephemeral".to_vec(),
            flags: 0,
            exptime: 1,
            data: b"v".to_vec().into(),
        },
    )
    .unwrap();
    assert_eq!(read_response(&mut reader).unwrap(), Response::Stored);
    // Visible immediately...
    write_command(
        &mut writer,
        &Command::Get {
            key: b"ephemeral".to_vec(),
        },
    )
    .unwrap();
    assert!(matches!(
        read_response(&mut reader).unwrap(),
        Response::Value { .. }
    ));
    // ...gone after the wall-clock second elapses.
    std::thread::sleep(std::time::Duration::from_millis(1100));
    write_command(
        &mut writer,
        &Command::Get {
            key: b"ephemeral".to_vec(),
        },
    )
    .unwrap();
    assert_eq!(read_response(&mut reader).unwrap(), Response::Miss);
    // And `add` can now claim the key.
    let client = CacheClient::connect(server.addr()).unwrap();
    assert!(client.add(b"ephemeral", b"new").unwrap());
    server.stop();
}

#[test]
fn stats_expose_digest_estimate() {
    let server = server();
    let client = CacheClient::connect(server.addr()).unwrap();
    for i in 0..200u32 {
        client.set(format!("k{i}").as_bytes(), b"v").unwrap();
    }
    let stats = client.stats().unwrap();
    let estimate: f64 = stats
        .iter()
        .find(|(k, _)| k == "digest_estimated_items")
        .map(|(_, v)| v.parse().unwrap())
        .unwrap();
    assert!((estimate - 200.0).abs() < 20.0, "estimate {estimate}");
    server.stop();
}

#[test]
fn slab_backend_serves_the_full_protocol() {
    let config = CacheConfig::with_capacity(1 << 20)
        .storage(StorageKind::Slab)
        .slab_page_bytes(64 << 10);
    let server = CacheServer::spawn("127.0.0.1:0", config).unwrap();
    let client = CacheClient::connect(server.addr()).unwrap();
    for i in 0..300u32 {
        let key = format!("slab-key-{i}");
        let value = vec![(i % 251) as u8; 16 + (i as usize % 900)];
        client.set(key.as_bytes(), &value).unwrap();
        assert_eq!(
            client.get(key.as_bytes()).unwrap().as_deref(),
            Some(&value[..])
        );
    }
    client.set(b"counter", b"41").unwrap();
    assert_eq!(client.incr(b"counter", 1).unwrap(), Some(42));

    // `stats proteus` exposes the slab allocator's telemetry.
    let stats = client.stats_proteus().unwrap();
    let lookup = |name: &str| -> String {
        stats
            .iter()
            .find(|(k, _)| k == name || k.starts_with(&format!("{name}{{")))
            .unwrap_or_else(|| panic!("missing stat {name}"))
            .1
            .clone()
    };
    let pages: u64 = lookup("proteus_slab_pages_allocated").parse().unwrap();
    assert!(pages >= 1, "slab server must hold at least one page");
    let live: u64 = lookup("proteus_slab_live_bytes").parse().unwrap();
    assert!(live > 0);
    let frag: f64 = lookup("proteus_slab_fragmentation_ratio").parse().unwrap();
    assert!((0.0..1.0).contains(&frag), "fragmentation {frag}");
    assert!(
        stats
            .iter()
            .any(|(k, _)| k.starts_with("proteus_slab_class_items")),
        "per-class metrics must be present"
    );
    server.stop();
}

#[test]
fn oversized_set_is_rejected_with_a_server_error() {
    // Value larger than the whole shard budget: the server must refuse
    // it cleanly instead of evicting everything or looping.
    let config = CacheConfig::with_capacity(64 << 10)
        .shards(1)
        .storage(StorageKind::Slab)
        .slab_page_bytes(16 << 10);
    let server = CacheServer::spawn("127.0.0.1:0", config).unwrap();
    let client = CacheClient::connect(server.addr()).unwrap();
    client.set(b"survivor", b"still here").unwrap();
    let huge = vec![0xAB; 128 << 10];
    match client.set(b"way-too-big", &huge) {
        Err(NetError::ServerError(msg)) => assert!(msg.contains("too large"), "{msg}"),
        other => panic!("expected rejection, got {other:?}"),
    }
    // Existing contents are untouched and the rejection is counted.
    assert_eq!(
        client.get(b"survivor").unwrap().as_deref(),
        Some(&b"still here"[..])
    );
    let stats = client.stats().unwrap();
    let rejected: u64 = stats
        .iter()
        .find(|(k, _)| k == "rejected_sets")
        .map(|(_, v)| v.parse().unwrap())
        .unwrap();
    assert_eq!(rejected, 1);
    server.stop();
}

#[test]
fn version_reports_the_crate_version() {
    let server = server();
    let client = CacheClient::connect(server.addr()).unwrap();
    let v = client.version().unwrap();
    assert!(v.starts_with("proteus-cache "), "{v}");
    server.stop();
}

#[test]
fn counters_survive_concurrent_increments() {
    // incr is atomic under the engine lock: N threads × M increments
    // must land exactly on N*M.
    let server = server();
    let client = std::sync::Arc::new(CacheClient::connect(server.addr()).unwrap());
    client.set(b"hits", b"0").unwrap();
    let mut handles = Vec::new();
    for _ in 0..4 {
        let c = std::sync::Arc::clone(&client);
        handles.push(std::thread::spawn(move || {
            for _ in 0..50 {
                c.incr(b"hits", 1).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(client.get(b"hits").unwrap().as_deref(), Some(&b"200"[..]));
    server.stop();
}
