//! Accept-path fd-exhaustion regression test: the event-driven data
//! planes survive a transient `EMFILE` on accept and resume serving.
//!
//! The shared policy under test is `accept_retry_delay_os` — used by
//! the epoll reactor's accept thread on the `io::Error` it gets from
//! `accept(2)`, and by the io_uring plane on the negated errno a
//! multishot-accept CQE carries. The scenario, per plane:
//!
//! 1. exhaust the process fd table for real — every fd *number* below
//!    `RLIMIT_NOFILE` occupied by a placeholder (the limit is clamped
//!    to 512 before the server spawns, to keep the fill cheap and
//!    because io_uring's accept captures the rlimit at SQE *prep*
//!    time, so a limit lowered after the multishot accept is armed
//!    would never be observed);
//! 2. park client connections — their TCP handshakes complete in the
//!    kernel via the listen backlog, needing no server-side fd — and
//!    watch the plane hit `EMFILE` on accept without dying, spinning,
//!    or disturbing connections that are already being served;
//! 3. release the placeholders: the backed-off accept retries, adopts
//!    the parked connections, and serves the requests that sat in
//!    their sockets the whole time.
//!
//! A plane whose accept path died at step 2 times out at step 3.
//!
//! Plane-specific wrinkle: the reactor's accept thread blocks inside
//! `accept(2)`, and Linux reserves the result fd number at syscall
//! *entry* — before blocking — so the accept that was already parked
//! when the table filled up completes on its pre-fill reservation. The
//! first client therefore gets served mid-exhaustion (asserted — it
//! proves accept-boundary exhaustion leaves live service untouched)
//! and the *next* accept hits `EMFILE`. io_uring's multishot accept
//! allocates the fd at *completion* time, so its first pending
//! connection already observes `-EMFILE` and both clients park.
//!
//! The threaded plane is exercised for the same policy by the unit
//! tests on `accept_retry_delay` instead: its blocking accept holds
//! the same entry-time reservation *and* needs two `try_clone` fds per
//! connection, so fd-table fault injection races the accept thread for
//! every freed slot and cannot be made deterministic from outside.
//!
//! One sequential `#[test]` covers both planes because the fd table
//! and `RLIMIT_NOFILE` are process-wide state (this integration test
//! is its own process, and in-process parallelism is what must be
//! avoided).

#![cfg(target_os = "linux")]

use std::fs::File;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::unix::io::FromRawFd;
use std::time::Duration;

use proteus_cache::CacheConfig;
use proteus_net::{uring_supported, CacheServer, EngineKind, ServerConfig};

// Raw rlimit/socket FFI: std exposes neither, and this test crate is
// outside the lib's `#![deny(unsafe_code)]` boundary.
const RLIMIT_NOFILE: i32 = 7;
const AF_INET: i32 = 2;
const SOCK_STREAM: i32 = 1;

/// Low enough that filling the table is instant, high enough that the
/// server's own fds (listener, rings, eventfds, pre-fault connection)
/// never come close.
const CLAMPED_LIMIT: u64 = 512;

#[repr(C)]
#[derive(Clone, Copy)]
struct Rlimit {
    cur: u64,
    max: u64,
}

#[repr(C)]
struct SockaddrIn {
    family: u16,
    port_be: u16,
    addr_be: u32,
    zero: [u8; 8],
}

extern "C" {
    fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
    fn connect(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
}

fn nofile_limit() -> Rlimit {
    let mut lim = Rlimit { cur: 0, max: 0 };
    let rc = unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) };
    assert_eq!(rc, 0, "getrlimit failed");
    lim
}

fn set_nofile_cur(cur: u64, original: Rlimit) {
    let lim = Rlimit {
        cur,
        max: original.max,
    };
    let rc = unsafe { setrlimit(RLIMIT_NOFILE, &lim) };
    assert_eq!(rc, 0, "setrlimit({cur}) failed");
}

/// Occupies every free fd number below the limit. `File::open` fails
/// with `EMFILE` exactly when no number below `RLIMIT_NOFILE` is free.
fn fill_fd_table() -> Vec<File> {
    let mut fill = Vec::new();
    loop {
        match File::open("/dev/null") {
            Ok(f) => fill.push(f),
            Err(e) => {
                assert_eq!(
                    e.raw_os_error(),
                    Some(24),
                    "table fill must end in EMFILE, got {e:?}"
                );
                return fill;
            }
        }
    }
}

/// A TCP socket whose fd is allocated *now* (while fds are plentiful)
/// but which connects later — `connect(2)` needs no new fd, so the
/// second client can reach the server from inside the exhaustion.
struct PreSocket(i32);

impl PreSocket {
    fn new() -> Self {
        let fd = unsafe { socket(AF_INET, SOCK_STREAM, 0) };
        assert!(fd >= 0, "socket() failed");
        PreSocket(fd)
    }

    fn connect(self, addr: SocketAddr) -> TcpStream {
        let SocketAddr::V4(v4) = addr else {
            panic!("test listener is always IPv4");
        };
        let sin = SockaddrIn {
            family: AF_INET as u16,
            port_be: v4.port().to_be(),
            addr_be: u32::from(*v4.ip()).to_be(),
            zero: [0; 8],
        };
        let rc = unsafe { connect(self.0, &sin, std::mem::size_of::<SockaddrIn>() as u32) };
        assert_eq!(rc, 0, "connect() on pre-created socket failed");
        let fd = self.0;
        std::mem::forget(self);
        unsafe { TcpStream::from_raw_fd(fd) }
    }
}

impl Drop for PreSocket {
    fn drop(&mut self) {
        drop(unsafe { File::from_raw_fd(self.0) });
    }
}

/// `served_during_exhaustion`: whether the plane's first client is
/// served while the fd table is still full (reactor: yes, via the
/// blocked accept's pre-fill fd reservation; uring: no, the
/// completion-time allocation already fails).
fn exercise_plane(engine: EngineKind, served_during_exhaustion: bool) {
    let server = CacheServer::spawn_with(
        "127.0.0.1:0",
        CacheConfig::with_capacity(1 << 20),
        ServerConfig { engine },
    )
    .unwrap();
    assert_eq!(server.engine_kind(), engine, "plane must not fall back");
    let addr = server.addr();

    // Prove the server serves before the fault.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(b"set pre 0 0 2\r\nok\r\nquit\r\n").unwrap();
        let mut out = Vec::new();
        s.read_to_end(&mut out).unwrap();
        assert_eq!(&out[..], b"STORED\r\n", "{engine:?} pre-fault");
    }

    // The server releases the pre-fault connection's fds *after* the
    // client sees EOF. Let the table settle before filling it, or a
    // slot freed afterwards would punch an allocatable hole in the
    // exhaustion.
    let settle = std::time::Instant::now();
    while server.metrics().curr_connections() != 0 {
        assert!(
            settle.elapsed() < Duration::from_secs(5),
            "pre-fault connection never drained"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(50));

    // The second client's fd, allocated while allocation still works.
    let second_socket = PreSocket::new();

    // Exhaust the table, then free exactly one slot (the last
    // placeholder's own number — the kernel allocates lowest-free, so
    // every other number below the limit stays occupied) for the first
    // client's socket.
    let mut fill = fill_fd_table();
    drop(fill.pop().expect("the fill is never empty"));

    // First client: spends the one free slot on its own socket. On the
    // reactor its connection is adopted via the accept thread's
    // pre-fill fd reservation and served normally; on io_uring the
    // accept CQE is already -EMFILE and the connection parks.
    let mut first = TcpStream::connect(addr).expect("connect via backlog");
    first
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    first.write_all(b"get pre\r\n").unwrap();
    if served_during_exhaustion {
        let mut buf = [0u8; 64];
        let n = first.read(&mut buf).unwrap();
        assert_eq!(
            &buf[..n],
            b"VALUE pre 0 2\r\nok\r\nEND\r\n",
            "{engine:?}: the pre-reserved accept must still serve mid-exhaustion"
        );
    }
    // `first` stays open either way, pinning its fd (and, on the
    // reactor, keeping the plane visibly mid-service while accept is
    // starved).

    // Second client: zero allocatable fds remain, so this connection
    // can only park in the listen backlog behind a failing accept.
    let mut second = second_socket.connect(addr);
    second
        .set_read_timeout(Some(Duration::from_millis(150)))
        .unwrap();
    second.write_all(b"get pre\r\nquit\r\n").unwrap();
    // Parked means parked: no reply arrives while the table is full.
    // (This is the discriminating assertion — if the fault failed to
    // bite, the reply would land well within the timeout.)
    let mut probe = [0u8; 1];
    match second.read(&mut probe) {
        Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
        other => {
            panic!("{engine:?}: second connection must stay parked under EMFILE, got {other:?}")
        }
    }

    // Recovery: release the placeholders; the backed-off accept must
    // retry, adopt the parked socket(s), and serve the requests queued
    // there.
    drop(fill);
    second
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut out = Vec::new();
    second
        .read_to_end(&mut out)
        .expect("parked connection must eventually be served");
    assert_eq!(
        &out[..],
        b"VALUE pre 0 2\r\nok\r\nEND\r\n",
        "{engine:?} must serve the connection parked through EMFILE, got {:?}",
        String::from_utf8_lossy(&out)
    );
    if !served_during_exhaustion {
        // On io_uring the first client was parked too; it is served by
        // the same post-recovery rearm.
        let mut buf = [0u8; 64];
        let n = first.read(&mut buf).unwrap();
        assert_eq!(
            &buf[..n],
            b"VALUE pre 0 2\r\nok\r\nEND\r\n",
            "{engine:?}: first parked connection must be served after recovery"
        );
    }
    drop(first);

    // And the accept path is fully healthy for new connections.
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"get pre\r\nquit\r\n").unwrap();
    let mut out = Vec::new();
    s.read_to_end(&mut out).unwrap();
    assert_eq!(&out[..], b"VALUE pre 0 2\r\nok\r\nEND\r\n");
    server.stop();
}

#[test]
fn accept_survives_fd_exhaustion_on_event_planes() {
    let original = nofile_limit();
    // Clamp before anything spawns: io_uring snapshots the limit when
    // the accept SQE is prepped, and a small limit keeps the fill
    // instant.
    set_nofile_cur(CLAMPED_LIMIT.min(original.cur), original);
    exercise_plane(EngineKind::Reactor { loops: 1 }, true);
    if uring_supported() {
        exercise_plane(EngineKind::Uring { loops: 1 }, false);
    } else {
        eprintln!("skipped: no io_uring (reactor plane covered)");
    }
    set_nofile_cur(original.cur, original);
    // Whatever happened, the process limit is back where it started.
    assert_eq!(nofile_limit().cur, original.cur);
}
