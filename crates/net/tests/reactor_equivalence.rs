//! The event-driven data planes serve exactly the same bytes as the
//! threaded data plane.
//!
//! The threaded server is the correctness oracle: every property here
//! spawns one server per plane — threaded, epoll reactor, and (when
//! the kernel supports it) io_uring — over identically configured
//! engines, drives the **same byte stream** into each over fresh
//! sockets — well-formed pipelines under random chunking, arbitrary
//! garbage, mutated valid streams, and a deterministic
//! split-at-every-boundary sweep — and requires byte-identical
//! responses. On kernels without io_uring the trio degrades to the
//! original pair (the uring server would silently resolve to a second
//! reactor, which proves nothing).
//!
//! Stream constraints that keep the comparison deterministic:
//!
//! - `stats` / `stats proteus` are excluded (uptime and latency values
//!   are nondeterministic by nature); `version` is included (fixed).
//! - Generated `exptime` is pinned to 0: a 1-second TTL could expire
//!   on one server and not the other across a tick boundary.
//! - Streams that can provoke an error-close (garbage, mutations) are
//!   written whole before the server looks at them and kept well under
//!   one reader-buffer fill, so the server always drains its socket
//!   before closing (close-with-unread-input would RST the response
//!   away nondeterministically on either plane).

#![cfg(target_os = "linux")]

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

use proptest::prelude::*;
use proteus_cache::CacheConfig;
use proteus_net::{uring_supported, write_command, CacheServer, Command, EngineKind, ServerConfig};
use proteus_obs::MetricValue;

/// One server per plane, oracle (threaded) first. The uring plane
/// joins only when the kernel actually supports it: on old kernels a
/// `Uring` request resolves to a second reactor, which would dilute
/// the property into reactor-vs-reactor.
fn spawn_planes() -> Vec<(&'static str, CacheServer)> {
    let spawn = |engine| {
        CacheServer::spawn_with(
            "127.0.0.1:0",
            CacheConfig::with_capacity(8 << 20),
            ServerConfig { engine },
        )
        .unwrap()
    };
    let threaded = spawn(EngineKind::Threaded);
    assert_eq!(threaded.engine_kind(), EngineKind::Threaded);
    let reactor = spawn(EngineKind::Reactor { loops: 2 });
    assert_eq!(reactor.engine_kind(), EngineKind::Reactor { loops: 2 });
    let mut planes = vec![("threaded", threaded), ("reactor", reactor)];
    if uring_supported() {
        let uring = spawn(EngineKind::Uring { loops: 2 });
        assert_eq!(
            uring.engine_kind(),
            EngineKind::Uring { loops: 2 },
            "probe said io_uring is supported; the server must not fall back"
        );
        planes.push(("uring", uring));
    } else {
        eprintln!("skipped: no io_uring (comparing threaded vs reactor only)");
    }
    planes
}

fn stop_all(planes: Vec<(&'static str, CacheServer)>) {
    for (_, server) in planes {
        server.stop();
    }
}

/// Writes `stream` to a fresh connection in the given chunk sizes
/// (pausing between chunks when asked, so the bytes genuinely arrive
/// as separate reads), half-closes, and returns everything the server
/// sent back.
fn drive(addr: SocketAddr, stream: &[u8], chunks: &[usize], pause: Option<Duration>) -> Vec<u8> {
    let mut sock = TcpStream::connect(addr).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    sock.set_nodelay(true).unwrap();
    // Writes tolerate failure: a pipeline containing `quit` closes the
    // server side mid-stream, and the bytes after it hit a broken pipe
    // — on either plane alike.
    let mut sent = 0;
    for &n in chunks {
        let end = (sent + n.max(1)).min(stream.len());
        if end > sent {
            if sock.write_all(&stream[sent..end]).is_err() {
                sent = stream.len();
                break;
            }
            sent = end;
        }
        if let Some(p) = pause {
            std::thread::sleep(p);
        }
    }
    if sent < stream.len() {
        let _ = sock.write_all(&stream[sent..]);
    }
    let _ = sock.shutdown(Shutdown::Write);
    let mut out = Vec::new();
    // An error after partial data keeps the partial read; both planes
    // are compared on whatever actually arrived.
    let _ = sock.read_to_end(&mut out);
    out
}

/// Drives every plane with identical bytes and asserts each one
/// answers byte-identically to the threaded oracle (the first entry).
fn assert_equivalent(
    planes: &[(&'static str, CacheServer)],
    stream: &[u8],
    chunks: &[usize],
    pause: Option<Duration>,
) -> Result<(), TestCaseError> {
    let (oracle_name, oracle) = &planes[0];
    let expected = drive(oracle.addr(), stream, chunks, pause);
    for (name, server) in &planes[1..] {
        let got = drive(server.addr(), stream, chunks, pause);
        prop_assert_eq!(
            &expected,
            &got,
            "planes diverged on stream {:?}: {} {:?} vs {} {:?}",
            String::from_utf8_lossy(stream),
            oracle_name,
            String::from_utf8_lossy(&expected),
            name,
            String::from_utf8_lossy(&got)
        );
    }
    Ok(())
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(33u8..=126, 1..24)
}

fn value_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..128)
}

/// Every deterministic command: no `stats` (uptime, live latencies)
/// and `exptime` pinned to 0 (a real TTL could lapse on one plane and
/// not the other).
fn command_strategy() -> impl Strategy<Value = Command> {
    prop_oneof![
        key_strategy().prop_map(|key| Command::Get { key }),
        prop::collection::vec(key_strategy(), 2..6).prop_map(|keys| Command::MultiGet { keys }),
        (key_strategy(), any::<u32>(), value_strategy()).prop_map(|(key, flags, data)| {
            Command::Set {
                key,
                flags,
                exptime: 0,
                data: data.into(),
            }
        }),
        (key_strategy(), any::<u32>(), value_strategy()).prop_map(|(key, flags, data)| {
            Command::Add {
                key,
                flags,
                exptime: 0,
                data: data.into(),
            }
        }),
        (key_strategy(), any::<u32>(), value_strategy()).prop_map(|(key, flags, data)| {
            Command::Replace {
                key,
                flags,
                exptime: 0,
                data: data.into(),
            }
        }),
        key_strategy().prop_map(|key| Command::Delete { key }),
        key_strategy().prop_map(|key| Command::Touch { key, exptime: 0 }),
        (key_strategy(), any::<u64>()).prop_map(|(key, delta)| Command::Incr { key, delta }),
        (key_strategy(), any::<u64>()).prop_map(|(key, delta)| Command::Decr { key, delta }),
        Just(Command::FlushAll),
        Just(Command::Version),
        Just(Command::Quit),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Well-formed pipelines under random chunking: both planes return
    /// the same bytes regardless of how the stream is fragmented.
    #[test]
    fn valid_pipelines_are_byte_identical(
        cmds in prop::collection::vec(command_strategy(), 1..8),
        chunks in prop::collection::vec(1usize..64, 1..12),
    ) {
        let mut stream = Vec::new();
        for cmd in &cmds {
            write_command(&mut stream, cmd).unwrap();
        }
        let planes = spawn_planes();
        assert_equivalent(&planes, &stream, &chunks, Some(Duration::from_millis(1)))?;
        stop_all(planes);
    }

    /// Arbitrary garbage: whatever the verdict (serve, error-close),
    /// it is the same verdict with the same bytes on both planes.
    #[test]
    fn garbage_streams_are_byte_identical(
        bytes in prop::collection::vec(any::<u8>(), 0..384),
    ) {
        let planes = spawn_planes();
        assert_equivalent(&planes, &bytes, &[bytes.len().max(1)], None)?;
        stop_all(planes);
    }

    /// CRLF-framed garbage text (the realistic fuzz surface) mixed in
    /// front of a valid command: the error response and close behavior
    /// must match.
    #[test]
    fn framed_garbage_is_byte_identical(
        lines in prop::collection::vec("[ -~]{0,60}", 1..4),
    ) {
        let mut stream = Vec::new();
        for line in &lines {
            stream.extend_from_slice(line.as_bytes());
            stream.extend_from_slice(b"\r\n");
        }
        write_command(&mut stream, &Command::Version).unwrap();
        let planes = spawn_planes();
        assert_equivalent(&planes, &stream, &[stream.len()], None)?;
        stop_all(planes);
    }

    /// Mutated valid streams: flip one byte or truncate a well-formed
    /// pipeline — both planes must still answer identically.
    #[test]
    fn mutated_streams_are_byte_identical(
        cmd in command_strategy(),
        flip_at in any::<usize>(),
        flip_to in any::<u8>(),
        cut in any::<usize>(),
    ) {
        let mut stream = Vec::new();
        write_command(&mut stream, &cmd).unwrap();
        let planes = spawn_planes();

        let mut flipped = stream.clone();
        let i = flip_at % flipped.len();
        flipped[i] = flip_to;
        assert_equivalent(&planes, &flipped, &[flipped.len()], None)?;

        let truncated = &stream[..cut % (stream.len() + 1)];
        assert_equivalent(&planes, truncated, &[truncated.len().max(1)], None)?;
        stop_all(planes);
    }
}

/// A fixed mixed pipeline split at **every** byte boundary, with a
/// pause so the halves genuinely arrive as separate reads: the
/// event-driven planes' resumable parsers must agree with the threaded
/// plane's blocking parser at every partial-arrival point.
#[test]
fn every_split_point_is_byte_identical() {
    let stream: &[u8] = b"set a 0 0 3\r\nxyz\r\nget a\r\nincr a 1\r\nset n 7 0 2\r\n42\r\nincr n 8\r\nget a n miss\r\ndelete a\r\nget a\r\nversion\r\nquit\r\n";
    let planes = spawn_planes();
    let whole: Vec<Vec<u8>> = planes
        .iter()
        .map(|(_, s)| drive(s.addr(), stream, &[stream.len()], None))
        .collect();
    for (i, (name, _)) in planes.iter().enumerate().skip(1) {
        assert_eq!(whole[0], whole[i], "whole-stream divergence on {name}");
    }
    assert!(
        whole[0].starts_with(b"STORED\r\n"),
        "sanity: the pipeline must actually be served, got {:?}",
        String::from_utf8_lossy(&whole[0])
    );
    // The pipeline deletes `a` itself but leaves `n` behind, and
    // `incr n 8` is not idempotent across replays — reset `n` between
    // runs so every replay answers exactly like the first.
    let reset: &[u8] = b"delete n\r\nquit\r\n";
    for split in 1..stream.len() {
        // One chunk of `split` bytes, a pause, then the rest: each
        // server sees a genuine partial arrival at this boundary.
        let mut replies = Vec::with_capacity(planes.len());
        for (_, server) in &planes {
            drive(server.addr(), reset, &[reset.len()], None);
            replies.push(drive(
                server.addr(),
                stream,
                &[split],
                Some(Duration::from_millis(1)),
            ));
        }
        for (i, (name, _)) in planes.iter().enumerate().skip(1) {
            assert_eq!(
                replies[0],
                replies[i],
                "planes diverged at split {split}: threaded {:?} vs {name} {:?}",
                String::from_utf8_lossy(&replies[0]),
                String::from_utf8_lossy(&replies[i])
            );
        }
        assert_eq!(replies[0], whole[0], "split {split} changed the responses");
    }
    stop_all(planes);
}

/// Shutdown quiesces cleanly with idle connections parked on the
/// plane's event loops (mirrors the threaded shutdown test in
/// `tcp_integration.rs`): `stop` must not hang waiting on them, and
/// it must wake every loop, not just one. Shared by the epoll and
/// io_uring planes — identical accounting is part of the equivalence
/// contract.
fn shutdown_quiesces_with_idle_connections(engine: EngineKind) {
    let server = CacheServer::spawn_with(
        "127.0.0.1:0",
        CacheConfig::with_capacity(1 << 20),
        ServerConfig { engine },
    )
    .unwrap();
    assert_eq!(server.engine_kind(), engine, "plane must not fall back");
    let addr = server.addr();
    // Park idle connections on every loop (round-robin assignment) and
    // verify they are live first.
    let mut idle = Vec::new();
    for i in 0..9 {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(s, "set k{i} 0 0 1\r\nx\r\n").unwrap();
        let mut buf = [0u8; 8];
        let n = s.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"STORED\r\n");
        idle.push(s);
    }
    // A connection that disconnects *before* shutdown must be decremented
    // exactly once — not again by the shutdown drain.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(s, "set early 0 0 1\r\nx\r\n").unwrap();
        let mut buf = [0u8; 8];
        let n = s.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"STORED\r\n");
        write!(s, "quit\r\n").unwrap();
        let mut rest = Vec::new();
        let _ = s.read_to_end(&mut rest);
    }
    assert_eq!(server.metrics().total_connections(), 10);
    // `stop` consumes the server; the pull-based source keeps the shared
    // metrics alive so the post-shutdown gauge can be inspected.
    let source = server.metric_source();
    let begin = std::time::Instant::now();
    server.stop();
    assert!(
        begin.elapsed() < Duration::from_secs(5),
        "stop must not wait on idle connections, took {:?}",
        begin.elapsed()
    );
    // The parked sockets observe the close.
    for mut s in idle {
        let mut rest = Vec::new();
        let _ = s.read_to_end(&mut rest);
        assert!(rest.is_empty(), "no stray bytes at shutdown: {rest:?}");
    }
    // Connection accounting is exactly-once: after every socket (the
    // early-quit one and the drained idle ones) is gone, the gauge is
    // back at zero — neither leaked (>0) nor double-decremented (<0) —
    // and the monotone total still reflects all ten accepts.
    let metrics = source();
    let value = |name: &str| {
        metrics
            .iter()
            .find(|m| m.name == name)
            .unwrap_or_else(|| panic!("{name} missing from registry"))
            .value
            .clone()
    };
    assert!(
        matches!(value("proteus_curr_connections"), MetricValue::Gauge(0)),
        "curr_connections must settle at exactly zero, got {:?}",
        value("proteus_curr_connections")
    );
    assert!(
        matches!(value("proteus_total_connections"), MetricValue::Counter(10)),
        "total_connections must count each accept once, got {:?}",
        value("proteus_total_connections")
    );
}

#[test]
fn reactor_shutdown_quiesces_with_idle_connections() {
    shutdown_quiesces_with_idle_connections(EngineKind::Reactor { loops: 3 });
}

/// The io_uring plane settles `curr_connections` at exactly 0 on
/// shutdown even with in-flight multishot accept, recv, and poll ops
/// outstanding on every loop.
#[test]
fn uring_shutdown_quiesces_with_idle_connections() {
    if !uring_supported() {
        eprintln!("skipped: no io_uring");
        return;
    }
    shutdown_quiesces_with_idle_connections(EngineKind::Uring { loops: 3 });
}

/// After `stop`, the plane's port no longer accepts work and a new
/// server can bind a fresh port and serve immediately (no leaked
/// event-loop threads, rings, or buffer registrations holding state).
fn stops_accepting_and_releases_resources(engine: EngineKind) {
    let server = CacheServer::spawn_with(
        "127.0.0.1:0",
        CacheConfig::with_capacity(1 << 20),
        ServerConfig { engine },
    )
    .unwrap();
    let addr = server.addr();
    server.stop();
    // The listener is gone: either the connect fails outright or the
    // accepted-then-orphaned socket yields no service.
    if let Ok(mut s) = TcpStream::connect(addr) {
        s.set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        let _ = s.write_all(b"version\r\n");
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        assert!(out.is_empty(), "stopped server must not serve: {out:?}");
    }
    // A successor spawns and serves at once.
    let next = CacheServer::spawn_with(
        "127.0.0.1:0",
        CacheConfig::with_capacity(1 << 20),
        ServerConfig { engine },
    )
    .unwrap();
    let mut s = TcpStream::connect(next.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(b"set k 0 0 1\r\nv\r\nget k\r\nquit\r\n")
        .unwrap();
    let mut out = Vec::new();
    s.read_to_end(&mut out).unwrap();
    assert_eq!(&out[..], b"STORED\r\nVALUE k 0 1\r\nv\r\nEND\r\n");
    next.stop();
}

#[test]
fn reactor_stops_accepting_and_releases_resources() {
    stops_accepting_and_releases_resources(EngineKind::Reactor { loops: 2 });
}

#[test]
fn uring_stops_accepting_and_releases_resources() {
    if !uring_supported() {
        eprintln!("skipped: no io_uring");
        return;
    }
    stops_accepting_and_releases_resources(EngineKind::Uring { loops: 2 });
}
