//! Validates the queueing substrate against closed-form theory.
//!
//! The Fig. 9 delay spikes hinge on the database pools queueing
//! correctly, so the [`Resource`] station is checked here against
//! M/M/1 and M/M/c (Erlang-C) sojourn times — if these hold, the
//! simulator's queueing dynamics are trustworthy.

use proteus_sim::{Distribution, Resource, SimDuration, SimRng, SimTime};

/// Runs a Poisson(λ) arrival stream with Exp(1/μ) service through a
/// `c`-server resource and returns the mean sojourn (wait + service)
/// in seconds.
fn simulate_mean_sojourn(lambda: f64, mu: f64, servers: usize, jobs: u64, seed: u64) -> f64 {
    let mut rng = SimRng::seed_from_u64(seed);
    let arrivals = Distribution::exponential(1.0 / lambda);
    let service = Distribution::exponential(1.0 / mu);
    let mut resource = Resource::new(servers);
    let mut now = SimTime::ZERO;
    let mut total = SimDuration::ZERO;
    for _ in 0..jobs {
        now += arrivals.sample(&mut rng);
        let grant = resource.acquire(now, service.sample(&mut rng));
        total += grant.end.saturating_since(now);
    }
    total.as_secs_f64() / jobs as f64
}

/// Erlang-C probability that an arrival waits, for offered load
/// `a = λ/μ` on `c` servers.
fn erlang_c(c: usize, a: f64) -> f64 {
    let mut term = 1.0;
    let mut sum = 1.0; // k = 0 term
    for k in 1..c {
        term *= a / k as f64;
        sum += term;
    }
    let tail = term * a / c as f64 * (c as f64 / (c as f64 - a));
    tail / (sum + tail)
}

#[test]
fn mm1_sojourn_matches_theory() {
    // M/M/1: W = 1 / (μ - λ).
    let lambda = 80.0;
    let mu = 100.0;
    let expect = 1.0 / (mu - lambda); // 50 ms
    let measured = simulate_mean_sojourn(lambda, mu, 1, 400_000, 1);
    let err = (measured - expect).abs() / expect;
    assert!(err < 0.05, "measured {measured:.4}s vs theory {expect:.4}s");
}

#[test]
fn mmc_sojourn_matches_erlang_c() {
    // M/M/2 at ρ = 0.75: W = 1/μ + C(c, a) / (cμ - λ).
    let lambda = 150.0;
    let mu = 100.0;
    let servers = 2;
    let a = lambda / mu;
    let expect = 1.0 / mu + erlang_c(servers, a) / (servers as f64 * mu - lambda);
    let measured = simulate_mean_sojourn(lambda, mu, servers, 400_000, 2);
    let err = (measured - expect).abs() / expect;
    assert!(err < 0.05, "measured {measured:.4}s vs theory {expect:.4}s");
}

#[test]
fn light_load_sojourn_is_service_time() {
    // Far below saturation the queue is empty: W ≈ 1/μ.
    let measured = simulate_mean_sojourn(5.0, 100.0, 4, 100_000, 3);
    let err = (measured - 0.01).abs() / 0.01;
    assert!(err < 0.05, "measured {measured:.4}s vs 0.0100s");
}

#[test]
fn overload_grows_without_bound() {
    // ρ > 1: the backlog grows with the number of admitted jobs — the
    // regime Naive's miss storms enter in Fig. 9.
    let short = simulate_mean_sojourn(150.0, 100.0, 1, 20_000, 4);
    let long = simulate_mean_sojourn(150.0, 100.0, 1, 80_000, 4);
    assert!(
        long > short * 2.0,
        "overloaded backlog must keep growing: {short:.3}s → {long:.3}s"
    );
}

#[test]
fn pooling_beats_partitioning() {
    // A classic queueing fact the DB tier design relies on: one pooled
    // c-server station beats c separate single-server stations at equal
    // total load.
    let lambda = 150.0;
    let mu = 100.0;
    let pooled = simulate_mean_sojourn(lambda, mu, 2, 200_000, 5);
    // Two separate M/M/1 queues each see λ/2.
    let split = simulate_mean_sojourn(lambda / 2.0, mu, 1, 200_000, 6);
    assert!(
        pooled < split,
        "pooled {pooled:.4}s must beat partitioned {split:.4}s"
    );
}
