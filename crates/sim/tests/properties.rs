//! Property-based tests for the simulation substrate.

use proptest::prelude::*;
use proteus_sim::{EventQueue, Histogram, Resource, SimDuration, SimRng, SimTime, TimeSeries};

proptest! {
    /// Popping the event queue always yields events in non-decreasing
    /// time order, regardless of insertion order.
    #[test]
    fn event_queue_is_time_ordered(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// Events scheduled at identical times pop in insertion order.
    #[test]
    fn event_queue_ties_are_fifo(n in 1usize..100, t in 0u64..1000) {
        let mut q = EventQueue::new();
        let at = SimTime::from_nanos(t);
        for i in 0..n {
            q.schedule(at, i);
        }
        for expect in 0..n {
            let (_, got) = q.pop().unwrap();
            prop_assert_eq!(got, expect);
        }
    }

    /// A resource's grants never start before arrival, never overlap more
    /// than `servers` jobs, and starts are non-decreasing (FIFO).
    #[test]
    fn resource_grants_are_feasible(
        servers in 1usize..8,
        jobs in prop::collection::vec((0u64..10_000, 1u64..500), 1..200),
    ) {
        let mut arrivals: Vec<(u64, u64)> = jobs;
        arrivals.sort_unstable();
        let mut r = Resource::new(servers);
        let mut grants = Vec::new();
        let mut last_start = SimTime::ZERO;
        for &(at, svc) in &arrivals {
            let arrival = SimTime::from_nanos(at);
            let g = r.acquire(arrival, SimDuration::from_nanos(svc));
            prop_assert!(g.start >= arrival);
            prop_assert_eq!(g.end, g.start + SimDuration::from_nanos(svc));
            prop_assert!(g.start >= last_start, "FIFO start order");
            last_start = g.start;
            grants.push(g);
        }
        // At any grant start, at most `servers` jobs are simultaneously
        // in service (check at each start instant).
        for probe in &grants {
            let overlapping = grants
                .iter()
                .filter(|g| g.start <= probe.start && probe.start < g.end)
                .count();
            prop_assert!(overlapping <= servers, "{overlapping} > {servers}");
        }
    }

    /// Histogram quantiles are within the documented 1.6% relative error
    /// of the true order statistic, for arbitrary sample sets.
    #[test]
    fn histogram_quantile_error_bounded(
        mut samples in prop::collection::vec(1u64..10_000_000_000, 10..400),
        q in 0.0f64..1.0,
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(SimDuration::from_nanos(s));
        }
        samples.sort_unstable();
        let rank = ((q * samples.len() as f64).floor() as usize).min(samples.len() - 1);
        let truth = samples[rank] as f64;
        let got = h.quantile(q).unwrap().as_nanos() as f64;
        // The histogram may land one order statistic off when samples
        // share a bucket; accept bucket-level error against the two
        // neighbouring order statistics.
        let lo = samples[rank.saturating_sub(1)] as f64;
        let hi = samples[(rank + 1).min(samples.len() - 1)] as f64;
        let tol = 0.017;
        let ok = (got - truth).abs() / truth <= tol
            || (got - lo).abs() / lo <= tol
            || (got - hi).abs() / hi <= tol;
        prop_assert!(ok, "q={q} got={got} truth={truth} lo={lo} hi={hi}");
    }

    /// Histogram count and mean are exact.
    #[test]
    fn histogram_count_and_mean_exact(samples in prop::collection::vec(0u64..1_000_000, 1..300)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(SimDuration::from_nanos(s));
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        let mean = samples.iter().sum::<u64>() / samples.len() as u64;
        prop_assert_eq!(h.mean().unwrap().as_nanos(), mean);
        prop_assert_eq!(h.min().unwrap().as_nanos(), *samples.iter().min().unwrap());
        prop_assert_eq!(h.max().unwrap().as_nanos(), *samples.iter().max().unwrap());
    }

    /// Merging histograms is equivalent to recording the union.
    #[test]
    fn histogram_merge_equals_union(
        a in prop::collection::vec(1u64..1_000_000, 0..100),
        b in prop::collection::vec(1u64..1_000_000, 0..100),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hu = Histogram::new();
        for &s in &a {
            ha.record(SimDuration::from_nanos(s));
            hu.record(SimDuration::from_nanos(s));
        }
        for &s in &b {
            hb.record(SimDuration::from_nanos(s));
            hu.record(SimDuration::from_nanos(s));
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hu.count());
        prop_assert_eq!(ha.mean().map(|d| d.as_nanos()), hu.mean().map(|d| d.as_nanos()));
        for qq in [0.1, 0.5, 0.9, 0.99] {
            prop_assert_eq!(
                ha.quantile(qq).map(|d| d.as_nanos()),
                hu.quantile(qq).map(|d| d.as_nanos())
            );
        }
    }

    /// TimeSeries totals are preserved regardless of where observations
    /// land, and per-slot sums add up to the grand total.
    #[test]
    fn time_series_conserves_mass(
        obs in prop::collection::vec((0u64..100_000, 0.0f64..100.0), 1..200),
        slots in 1usize..20,
    ) {
        let mut s = TimeSeries::new(SimDuration::from_nanos(1000), slots);
        let mut total = 0.0;
        for &(t, v) in &obs {
            s.add(SimTime::from_nanos(t), v);
            total += v;
        }
        prop_assert!((s.total() - total).abs() < 1e-6);
        prop_assert_eq!(s.counts().iter().sum::<u64>(), obs.len() as u64);
    }

    /// Forked RNG streams are deterministic functions of (seed, salt).
    #[test]
    fn rng_fork_is_deterministic(seed in any::<u64>(), salt in any::<u64>()) {
        let mut a = SimRng::seed_from_u64(seed);
        let mut b = SimRng::seed_from_u64(seed);
        let mut fa = a.fork(salt);
        let mut fb = b.fork(salt);
        for _ in 0..8 {
            prop_assert_eq!(fa.next_u64(), fb.next_u64());
        }
    }
}
