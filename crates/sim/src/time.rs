//! Simulated time.
//!
//! All simulation timestamps are nanosecond ticks since the start of the
//! simulation. Newtypes keep instants and durations from being mixed up
//! and keep the arithmetic explicit (C-NEWTYPE).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in simulated time, measured in nanoseconds since the
/// simulation epoch.
///
/// `SimTime` is totally ordered and supports the obvious arithmetic with
/// [`SimDuration`].
///
/// # Example
///
/// ```
/// use proteus_sim::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_secs(2);
/// assert_eq!(t.as_nanos(), 2_000_000_000);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
///
/// # Example
///
/// ```
/// use proteus_sim::SimDuration;
/// let d = SimDuration::from_millis(1) + SimDuration::from_micros(500);
/// assert_eq!(d.as_nanos(), 1_500_000);
/// assert_eq!(d.as_secs_f64(), 0.0015);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since the epoch.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from whole seconds since the epoch.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Returns the raw nanosecond count.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional seconds since the epoch.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction of two instants.
    #[must_use]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Returns the raw nanosecond count.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration as fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating duration subtraction.
    #[must_use]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({:.6}s)", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({:.6}s)", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_secs(3);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
    }

    #[test]
    fn checked_since_detects_underflow() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.checked_since(late), None);
        assert_eq!(late.checked_since(early), Some(SimDuration::from_secs(1)));
    }

    #[test]
    fn duration_conversions_are_consistent() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
        assert_eq!(
            SimDuration::from_secs_f64(0.25),
            SimDuration::from_millis(250)
        );
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", SimTime::ZERO).is_empty());
        assert!(!format!("{:?}", SimDuration::ZERO).is_empty());
    }
}
