//! Streaming summary statistics (Welford's algorithm).
//!
//! Used by the multi-seed robustness experiments to report means and
//! confidence half-widths without storing samples.

/// A running mean/variance accumulator (numerically stable Welford
/// updates).
///
/// # Example
///
/// ```
/// use proteus_sim::Welford;
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert_eq!(w.count(), 8);
/// assert!((w.mean() - 5.0).abs() < 1e-12);
/// assert!((w.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "samples must be finite, got {x}");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The running mean (0 before any samples).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The smallest sample, or `None` before any samples.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// The largest sample, or `None` before any samples.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Population variance (divides by `n`; 0 before two samples).
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n − 1`; 0 before two samples).
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// An approximate 95% confidence half-width for the mean
    /// (`t ≈ 2` times the standard error; exact-enough for the
    /// robustness reports, which use ≥5 replicates).
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        2.0 * self.sample_std_dev() / (self.count as f64).sqrt()
    }
}

impl Extend<f64> for Welford {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Welford {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut w = Welford::new();
        w.extend(iter);
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_two_pass_computation() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 / 7.0).collect();
        let w: Welford = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-9);
        assert!((w.sample_variance() - var).abs() < 1e-9);
        assert_eq!(w.count(), 1000);
    }

    #[test]
    fn extremes_and_empty() {
        let mut w = Welford::new();
        assert_eq!(w.min(), None);
        assert_eq!(w.max(), None);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.ci95_half_width(), 0.0);
        w.push(3.0);
        assert_eq!(w.min(), Some(3.0));
        assert_eq!(w.max(), Some(3.0));
        assert_eq!(w.sample_variance(), 0.0);
        w.push(-1.0);
        assert_eq!(w.min(), Some(-1.0));
        assert_eq!(w.max(), Some(3.0));
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut small: Welford = (0..10).map(|i| f64::from(i % 5)).collect();
        let mut large: Welford = (0..1000).map(|i| f64::from(i % 5)).collect();
        assert!(large.ci95_half_width() < small.ci95_half_width());
        // Keep the accumulators usable after reading.
        small.push(1.0);
        large.push(1.0);
    }

    #[test]
    fn numerical_stability_with_offset_data() {
        // Classic catastrophic-cancellation case: huge offset, small spread.
        // 999 samples → exactly 333 of each residue, variance exactly 2/3.
        let w: Welford = (0..999).map(|i| 1e9 + f64::from(i % 3)).collect();
        assert!(
            (w.population_variance() - 2.0 / 3.0).abs() < 1e-6,
            "variance {}",
            w.population_variance()
        );
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        Welford::new().push(f64::NAN);
    }
}
