//! Slot-bucketed time series for per-slot experiment figures.

use crate::time::{SimDuration, SimTime};

/// Accumulates `(time, value)` observations into fixed-width time slots.
///
/// Every per-slot curve in the paper's evaluation — requests per slot
/// (Fig. 4), load-balance ratio (Fig. 5), power draw (Fig. 10) — is a
/// `TimeSeries`: observations are added at simulation timestamps and read
/// back as per-slot sums, counts, or means.
///
/// Observations past the configured horizon are counted into the last
/// slot rather than dropped, so totals remain exact.
///
/// # Example
///
/// ```
/// use proteus_sim::{SimDuration, SimTime, TimeSeries};
///
/// let mut s = TimeSeries::new(SimDuration::from_secs(10), 3);
/// s.add(SimTime::from_secs(1), 2.0);
/// s.add(SimTime::from_secs(5), 3.0);
/// s.add(SimTime::from_secs(25), 7.0);
/// assert_eq!(s.sum(0), 5.0);
/// assert_eq!(s.sum(2), 7.0);
/// assert_eq!(s.counts(), &[2, 0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct TimeSeries {
    slot: SimDuration,
    sums: Vec<f64>,
    counts: Vec<u64>,
}

impl TimeSeries {
    /// Creates a series covering `slots` consecutive slots of width `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is zero or `slots` is zero.
    #[must_use]
    pub fn new(slot: SimDuration, slots: usize) -> Self {
        assert!(slot > SimDuration::ZERO, "slot width must be positive");
        assert!(slots > 0, "need at least one slot");
        TimeSeries {
            slot,
            sums: vec![0.0; slots],
            counts: vec![0; slots],
        }
    }

    /// The slot index that `t` falls into (clamped to the last slot).
    #[must_use]
    pub fn slot_of(&self, t: SimTime) -> usize {
        let idx = (t.as_nanos() / self.slot.as_nanos()) as usize;
        idx.min(self.sums.len() - 1)
    }

    /// Width of each slot.
    #[must_use]
    pub fn slot_width(&self) -> SimDuration {
        self.slot
    }

    /// Number of slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sums.len()
    }

    /// Whether the series has zero slots (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sums.is_empty()
    }

    /// Records `value` at time `t`.
    pub fn add(&mut self, t: SimTime, value: f64) {
        let i = self.slot_of(t);
        self.sums[i] += value;
        self.counts[i] += 1;
    }

    /// Sum of values recorded in slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn sum(&self, i: usize) -> f64 {
        self.sums[i]
    }

    /// Number of observations recorded in slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Mean of values in slot `i`, or `None` if the slot is empty.
    #[must_use]
    pub fn mean(&self, i: usize) -> Option<f64> {
        (self.counts[i] > 0).then(|| self.sums[i] / self.counts[i] as f64)
    }

    /// All per-slot sums.
    #[must_use]
    pub fn sums(&self) -> &[f64] {
        &self.sums
    }

    /// All per-slot observation counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Grand total over all slots.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.sums.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_partition_time() {
        let s = TimeSeries::new(SimDuration::from_secs(30), 48);
        assert_eq!(s.slot_of(SimTime::ZERO), 0);
        assert_eq!(s.slot_of(SimTime::from_secs(29)), 0);
        assert_eq!(s.slot_of(SimTime::from_secs(30)), 1);
        assert_eq!(s.slot_of(SimTime::from_secs(30 * 48 + 5)), 47, "clamped");
        assert_eq!(s.len(), 48);
        assert!(!s.is_empty());
    }

    #[test]
    fn add_accumulates_sums_and_counts() {
        let mut s = TimeSeries::new(SimDuration::from_secs(1), 2);
        s.add(SimTime::ZERO, 1.5);
        s.add(SimTime::from_nanos(999_999_999), 2.5);
        s.add(SimTime::from_secs(1), 4.0);
        assert_eq!(s.sum(0), 4.0);
        assert_eq!(s.count(0), 2);
        assert_eq!(s.sum(1), 4.0);
        assert_eq!(s.mean(0), Some(2.0));
        assert_eq!(s.total(), 8.0);
    }

    #[test]
    fn mean_of_empty_slot_is_none() {
        let s = TimeSeries::new(SimDuration::from_secs(1), 3);
        assert_eq!(s.mean(1), None);
    }

    #[test]
    #[should_panic(expected = "slot width must be positive")]
    fn zero_width_rejected() {
        let _ = TimeSeries::new(SimDuration::ZERO, 4);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        let _ = TimeSeries::new(SimDuration::from_secs(1), 0);
    }
}
