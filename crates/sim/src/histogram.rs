//! Log-bucketed latency histogram with quantile queries.

use crate::time::SimDuration;

/// Number of sub-buckets per octave; bounds relative quantile error to
/// about `1/SUB` (~1.6%).
const SUB_BITS: u32 = 6;
const SUB: u64 = 1 << SUB_BITS;

/// A fixed-memory latency histogram with bounded relative error.
///
/// Values (durations in nanoseconds) below 64 ns are recorded exactly;
/// larger values are recorded in logarithmic buckets with 64 sub-buckets
/// per octave, giving a worst-case relative error of about 1.6% — more
/// than enough to reproduce the paper's 99.9th-percentile response-time
/// plots (Fig. 9).
///
/// # Example
///
/// ```
/// use proteus_sim::{Histogram, SimDuration};
///
/// let mut h = Histogram::new();
/// for ms in 1..=100 {
///     h.record(SimDuration::from_millis(ms));
/// }
/// let p50 = h.quantile(0.50).unwrap();
/// assert!((p50.as_millis_f64() - 50.0).abs() / 50.0 < 0.05);
/// assert_eq!(h.count(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum_nanos: u128,
    min: u64,
    max: u64,
}

fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as u64; // >= SUB_BITS
        let k = msb - (SUB_BITS as u64 - 1); // octave shift >= 1
        ((k << SUB_BITS) + (v >> k)) as usize
    }
}

fn bucket_value(idx: usize) -> u64 {
    let idx = idx as u64;
    let k = idx >> SUB_BITS;
    let low = idx & (SUB - 1);
    if k == 0 {
        low
    } else {
        // Midpoint of the bucket [low << k, (low + 1) << k).
        (low << k) + (1 << (k - 1))
    }
}

const MAX_BUCKETS: usize = ((64 - SUB_BITS as usize + 1) << SUB_BITS as usize) + SUB as usize;

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; MAX_BUCKETS],
            count: 0,
            sum_nanos: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one duration sample.
    pub fn record(&mut self, d: SimDuration) {
        let v = d.as_nanos();
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum_nanos += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The smallest recorded sample, or `None` if empty.
    #[must_use]
    pub fn min(&self) -> Option<SimDuration> {
        (self.count > 0).then(|| SimDuration::from_nanos(self.min))
    }

    /// The largest recorded sample, or `None` if empty.
    #[must_use]
    pub fn max(&self) -> Option<SimDuration> {
        (self.count > 0).then(|| SimDuration::from_nanos(self.max))
    }

    /// The exact mean of all recorded samples, or `None` if empty.
    #[must_use]
    pub fn mean(&self) -> Option<SimDuration> {
        (self.count > 0)
            .then(|| SimDuration::from_nanos((self.sum_nanos / u128::from(self.count)) as u64))
    }

    /// The `q`-quantile (e.g. `0.999` for the 99.9th percentile), with
    /// ≤ ~1.6% relative error, or `None` if the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        if self.count == 0 {
            return None;
        }
        if q >= 1.0 {
            return Some(SimDuration::from_nanos(self.max));
        }
        let rank = (q * self.count as f64).floor() as u64 + 1;
        let mut cum = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let v = bucket_value(idx).clamp(self.min, self.max);
                return Some(SimDuration::from_nanos(v));
            }
        }
        Some(SimDuration::from_nanos(self.max))
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_nanos += other.sum_nanos;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Resets the histogram to empty without releasing memory.
    pub fn clear(&mut self) {
        self.buckets.fill(0);
        self.count = 0;
        self.sum_nanos = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_error_is_bounded() {
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            for probe in [v, v + v / 3, v * 2 - 1] {
                let rebuilt = bucket_value(bucket_index(probe));
                let err = (rebuilt as f64 - probe as f64).abs() / probe as f64;
                assert!(
                    err <= 1.0 / SUB as f64 + 1e-12,
                    "v={probe} rebuilt={rebuilt}"
                );
            }
            v *= 2;
        }
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB {
            assert_eq!(bucket_value(bucket_index(v)), v);
        }
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut h = Histogram::new();
        for ms in 1..=1000u64 {
            h.record(SimDuration::from_millis(ms));
        }
        for (q, expect_ms) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0), (0.999, 999.0)] {
            let got = h.quantile(q).unwrap().as_millis_f64();
            let err = (got - expect_ms).abs() / expect_ms;
            assert!(err < 0.03, "q={q} got={got} want~{expect_ms}");
        }
    }

    #[test]
    fn extreme_quantiles_hit_min_max() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_millis(3));
        h.record(SimDuration::from_millis(7));
        assert_eq!(h.quantile(1.0).unwrap(), SimDuration::from_millis(7));
        assert_eq!(h.max().unwrap(), SimDuration::from_millis(7));
        assert_eq!(h.min().unwrap(), SimDuration::from_millis(3));
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_millis(10));
        h.record(SimDuration::from_millis(30));
        assert_eq!(h.mean().unwrap(), SimDuration::from_millis(20));
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(SimDuration::from_millis(1));
        b.record(SimDuration::from_millis(100));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min().unwrap(), SimDuration::from_millis(1));
        assert_eq!(a.max().unwrap(), SimDuration::from_millis(100));
    }

    #[test]
    fn clear_resets() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_secs(1));
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.9), None);
    }

    #[test]
    fn heavy_tail_p999_detects_spike() {
        // 99.9% of samples at 2 ms, 0.1%+ at 2 s: p999 must see the spike
        // region, p50 must not.
        let mut h = Histogram::new();
        for _ in 0..9980 {
            h.record(SimDuration::from_millis(2));
        }
        for _ in 0..20 {
            h.record(SimDuration::from_secs(2));
        }
        assert!(h.quantile(0.5).unwrap().as_millis_f64() < 3.0);
        assert!(h.quantile(0.999).unwrap().as_secs_f64() > 1.9);
    }
}
