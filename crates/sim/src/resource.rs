//! FIFO multi-server queueing stations.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A FIFO queueing station with a fixed number of parallel servers.
///
/// This models finite-concurrency backends: a database shard with a
/// connection pool of `c` connections, or a cache server's worker
/// threads. Jobs that arrive while all servers are busy wait in FIFO
/// order; that queueing delay is exactly the mechanism by which the
/// paper's "miss storms" turn into response-time spikes (Fig. 9).
///
/// `acquire` performs the entire admission: given the arrival time and
/// service demand it returns when service starts and ends, and records
/// the reservation.
///
/// # Example
///
/// ```
/// use proteus_sim::{Resource, SimDuration, SimTime};
///
/// let mut pool = Resource::new(1);
/// let t0 = SimTime::ZERO;
/// let svc = SimDuration::from_millis(10);
/// let a = pool.acquire(t0, svc);
/// let b = pool.acquire(t0, svc); // must wait for the first job
/// assert_eq!(a.start, t0);
/// assert_eq!(b.start, t0 + svc);
/// assert_eq!(b.end, t0 + svc + svc);
/// ```
#[derive(Debug, Clone)]
pub struct Resource {
    servers: usize,
    busy_until: BinaryHeap<Reverse<SimTime>>,
    busy_time: SimDuration,
    wait_time: SimDuration,
    completed: u64,
}

/// The outcome of admitting one job to a [`Resource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When service begins (>= arrival time).
    pub start: SimTime,
    /// When service completes.
    pub end: SimTime,
}

impl Grant {
    /// Time the job spent waiting for a free server.
    #[must_use]
    pub fn wait(&self, arrival: SimTime) -> SimDuration {
        self.start.saturating_since(arrival)
    }
}

impl Resource {
    /// Creates a station with `servers` parallel servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    #[must_use]
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "a resource needs at least one server");
        Resource {
            servers,
            busy_until: BinaryHeap::with_capacity(servers),
            busy_time: SimDuration::ZERO,
            wait_time: SimDuration::ZERO,
            completed: 0,
        }
    }

    /// Number of parallel servers.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Admits a job arriving at `now` with service demand `service`,
    /// returning its start and completion times.
    ///
    /// Jobs must be admitted in non-decreasing arrival order for the
    /// FIFO semantics to hold; the discrete-event loop guarantees this.
    pub fn acquire(&mut self, now: SimTime, service: SimDuration) -> Grant {
        // Drop reservations that have already completed.
        while let Some(&Reverse(t)) = self.busy_until.peek() {
            if t <= now && !self.busy_until.is_empty() {
                self.busy_until.pop();
            } else {
                break;
            }
        }
        let start = if self.busy_until.len() < self.servers {
            now
        } else {
            // All servers busy: wait for the earliest to free up.
            let Reverse(free_at) = self.busy_until.pop().expect("non-empty");
            free_at.max(now)
        };
        let end = start + service;
        self.busy_until.push(Reverse(end));
        self.busy_time += service;
        self.wait_time += start.saturating_since(now);
        self.completed += 1;
        Grant { start, end }
    }

    /// Number of jobs currently in service or reserved at time `now`.
    #[must_use]
    pub fn in_service(&self, now: SimTime) -> usize {
        self.busy_until.iter().filter(|Reverse(t)| *t > now).count()
    }

    /// Total service time delivered so far.
    #[must_use]
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Total time jobs spent queueing so far.
    #[must_use]
    pub fn wait_time(&self) -> SimDuration {
        self.wait_time
    }

    /// Number of admitted jobs.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Mean utilization over `[SimTime::ZERO, now]` across all servers.
    #[must_use]
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        self.busy_time.as_secs_f64() / (now.as_secs_f64() * self.servers as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: SimDuration = SimDuration::from_millis(1);

    #[test]
    fn idle_resource_starts_immediately() {
        let mut r = Resource::new(4);
        let g = r.acquire(SimTime::from_secs(1), MS * 10);
        assert_eq!(g.start, SimTime::from_secs(1));
        assert_eq!(g.end, SimTime::from_secs(1) + MS * 10);
        assert_eq!(g.wait(SimTime::from_secs(1)), SimDuration::ZERO);
    }

    #[test]
    fn saturated_resource_queues_fifo() {
        let mut r = Resource::new(2);
        let t = SimTime::ZERO;
        let g1 = r.acquire(t, MS * 10);
        let g2 = r.acquire(t, MS * 10);
        let g3 = r.acquire(t, MS * 10);
        let g4 = r.acquire(t, MS * 10);
        assert_eq!(g1.start, t);
        assert_eq!(g2.start, t);
        assert_eq!(g3.start, t + MS * 10);
        assert_eq!(g4.start, t + MS * 10);
        assert_eq!(g4.end, t + MS * 20);
    }

    #[test]
    fn completed_jobs_free_servers() {
        let mut r = Resource::new(1);
        let g1 = r.acquire(SimTime::ZERO, MS * 5);
        assert_eq!(g1.end, SimTime::ZERO + MS * 5);
        // Arrives after the first finished: no wait.
        let g2 = r.acquire(SimTime::ZERO + MS * 7, MS * 5);
        assert_eq!(g2.start, SimTime::ZERO + MS * 7);
    }

    #[test]
    fn wait_accumulates_under_overload() {
        let mut r = Resource::new(1);
        for _ in 0..10 {
            r.acquire(SimTime::ZERO, MS * 10);
        }
        // Jobs 2..10 wait 10, 20, ..., 90 ms = 450 ms total.
        assert_eq!(r.wait_time(), MS * 450);
        assert_eq!(r.completed(), 10);
        assert_eq!(r.busy_time(), MS * 100);
    }

    #[test]
    fn in_service_counts_active_reservations() {
        let mut r = Resource::new(4);
        r.acquire(SimTime::ZERO, MS * 10);
        r.acquire(SimTime::ZERO, MS * 20);
        assert_eq!(r.in_service(SimTime::ZERO + MS * 5), 2);
        assert_eq!(r.in_service(SimTime::ZERO + MS * 15), 1);
        assert_eq!(r.in_service(SimTime::ZERO + MS * 25), 0);
    }

    #[test]
    fn utilization_is_busy_fraction() {
        let mut r = Resource::new(2);
        r.acquire(SimTime::ZERO, SimDuration::from_secs(1));
        // 1 busy server-second over 2 servers * 1 second = 0.5
        let u = r.utilization(SimTime::from_secs(1));
        assert!((u - 0.5).abs() < 1e-9, "utilization {u}");
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let _ = Resource::new(0);
    }
}
