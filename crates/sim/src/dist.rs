//! Latency and workload distributions.
//!
//! Implemented from first principles (inverse-CDF, Box–Muller) so the
//! workspace only needs `rand`'s uniform source. Every distribution
//! samples a *duration*; parameters are expressed in seconds for
//! readability at construction sites.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// A duration-valued probability distribution used for service and
/// network latencies.
///
/// # Example
///
/// ```
/// use proteus_sim::{dist::Distribution, SimRng};
///
/// let mut rng = SimRng::seed_from_u64(1);
/// let d = Distribution::exponential(0.010); // mean 10 ms
/// let sample = d.sample(&mut rng);
/// assert!(sample.as_secs_f64() >= 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    // (Empirical sampling lives in [`Empirical`]; this enum stays Copy
    // for cheap embedding in configs.)
    /// Always the same duration.
    Constant {
        /// The fixed value in seconds.
        secs: f64,
    },
    /// Uniform between `lo` and `hi` seconds.
    Uniform {
        /// Lower bound in seconds (inclusive).
        lo: f64,
        /// Upper bound in seconds (exclusive).
        hi: f64,
    },
    /// Exponential with the given mean (seconds).
    Exponential {
        /// Mean in seconds.
        mean: f64,
    },
    /// Log-normal parameterized by the mean and standard deviation of
    /// the *resulting* distribution (not of the underlying normal),
    /// which is the natural way to express "DB lookups take ~40 ms
    /// give or take".
    LogNormal {
        /// Mean of the log-normal in seconds.
        mean: f64,
        /// Standard deviation of the log-normal in seconds.
        std_dev: f64,
    },
}

impl Distribution {
    /// A distribution that always returns `secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[must_use]
    pub fn constant(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid constant {secs}");
        Distribution::Constant { secs }
    }

    /// Uniform over `[lo, hi)` seconds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= lo <= hi` and both are finite.
    #[must_use]
    pub fn uniform(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && 0.0 <= lo && lo <= hi,
            "invalid uniform bounds [{lo}, {hi})"
        );
        Distribution::Uniform { lo, hi }
    }

    /// Exponential with mean `mean` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    #[must_use]
    pub fn exponential(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "invalid exponential mean {mean}"
        );
        Distribution::Exponential { mean }
    }

    /// Log-normal with the given mean and standard deviation (seconds).
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are strictly positive and finite.
    #[must_use]
    pub fn log_normal(mean: f64, std_dev: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0 && std_dev.is_finite() && std_dev > 0.0,
            "invalid log-normal parameters mean={mean} std_dev={std_dev}"
        );
        Distribution::LogNormal { mean, std_dev }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        let secs = self.sample_secs(rng);
        SimDuration::from_secs_f64(secs)
    }

    /// Draws one sample as fractional seconds.
    pub fn sample_secs(&self, rng: &mut SimRng) -> f64 {
        match *self {
            Distribution::Constant { secs } => secs,
            Distribution::Uniform { lo, hi } => lo + (hi - lo) * rng.uniform_f64(),
            Distribution::Exponential { mean } => {
                // Inverse CDF: -mean * ln(U), U in (0, 1].
                -mean * rng.positive_uniform_f64().ln()
            }
            Distribution::LogNormal { mean, std_dev } => {
                // Convert the target (mean, std_dev) of the log-normal
                // into the (mu, sigma) of the underlying normal.
                let variance = std_dev * std_dev;
                let m2 = mean * mean;
                let sigma2 = (1.0 + variance / m2).ln();
                let mu = mean.ln() - sigma2 / 2.0;
                let z = standard_normal(rng);
                (mu + sigma2.sqrt() * z).exp()
            }
        }
    }

    /// The distribution's mean in seconds.
    #[must_use]
    pub fn mean_secs(&self) -> f64 {
        match *self {
            Distribution::Constant { secs } => secs,
            Distribution::Uniform { lo, hi } => (lo + hi) / 2.0,
            Distribution::Exponential { mean } => mean,
            Distribution::LogNormal { mean, .. } => mean,
        }
    }
}

/// A distribution backed by recorded samples: draws uniformly from the
/// sample set (the bootstrap). Useful for replaying measured latency
/// distributions — e.g. database service times captured from a real
/// MySQL install — through the simulator.
///
/// # Example
///
/// ```
/// use proteus_sim::{dist::Empirical, SimDuration, SimRng};
/// let observed = vec![
///     SimDuration::from_millis(10),
///     SimDuration::from_millis(20),
///     SimDuration::from_millis(40),
/// ];
/// let dist = Empirical::new(observed.clone());
/// let mut rng = SimRng::seed_from_u64(1);
/// assert!(observed.contains(&dist.sample(&mut rng)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Empirical {
    samples: Vec<SimDuration>,
}

impl Empirical {
    /// Creates a distribution over the recorded samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    #[must_use]
    pub fn new(samples: Vec<SimDuration>) -> Self {
        assert!(!samples.is_empty(), "need at least one recorded sample");
        Empirical { samples }
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the sample set is empty (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Draws one sample (uniform over the recorded set).
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        self.samples[rng.index(self.samples.len())]
    }

    /// The exact mean of the recorded samples.
    #[must_use]
    pub fn mean(&self) -> SimDuration {
        let total: u128 = self.samples.iter().map(|d| u128::from(d.as_nanos())).sum();
        SimDuration::from_nanos((total / self.samples.len() as u128) as u64)
    }
}

/// One standard-normal sample via Box–Muller.
fn standard_normal(rng: &mut SimRng) -> f64 {
    let u1 = rng.positive_uniform_f64();
    let u2 = rng.uniform_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(d: Distribution, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample_secs(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let mut rng = SimRng::seed_from_u64(1);
        let d = Distribution::constant(0.005);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), SimDuration::from_millis(5));
        }
    }

    #[test]
    fn uniform_within_bounds_and_mean() {
        let d = Distribution::uniform(0.010, 0.020);
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..1000 {
            let s = d.sample_secs(&mut rng);
            assert!((0.010..0.020).contains(&s));
        }
        let m = mean_of(d, 50_000, 3);
        assert!((m - 0.015).abs() < 0.0003, "mean {m}");
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Distribution::exponential(0.040);
        let m = mean_of(d, 100_000, 4);
        assert!((m - 0.040).abs() < 0.001, "mean {m}");
    }

    #[test]
    fn log_normal_mean_and_positivity() {
        let d = Distribution::log_normal(0.040, 0.020);
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(d.sample_secs(&mut rng) > 0.0);
        }
        let m = mean_of(d, 200_000, 6);
        assert!((m - 0.040).abs() < 0.001, "mean {m}");
    }

    #[test]
    fn exponential_is_memoryless_in_shape() {
        // P(X > 2m) should be about e^-2 when the mean is m.
        let d = Distribution::exponential(1.0);
        let mut rng = SimRng::seed_from_u64(7);
        let n = 100_000;
        let tail = (0..n).filter(|_| d.sample_secs(&mut rng) > 2.0).count();
        let p = tail as f64 / n as f64;
        assert!((p - (-2.0f64).exp()).abs() < 0.01, "tail prob {p}");
    }

    #[test]
    fn mean_secs_reports_parameters() {
        assert_eq!(Distribution::constant(0.5).mean_secs(), 0.5);
        assert_eq!(Distribution::uniform(0.0, 1.0).mean_secs(), 0.5);
        assert_eq!(Distribution::exponential(0.25).mean_secs(), 0.25);
        assert_eq!(Distribution::log_normal(0.1, 0.05).mean_secs(), 0.1);
    }

    #[test]
    #[should_panic(expected = "invalid exponential mean")]
    fn exponential_rejects_zero_mean() {
        let _ = Distribution::exponential(0.0);
    }

    #[test]
    #[should_panic(expected = "invalid uniform bounds")]
    fn uniform_rejects_inverted_bounds() {
        let _ = Distribution::uniform(2.0, 1.0);
    }

    #[test]
    fn empirical_samples_only_recorded_values() {
        let observed: Vec<SimDuration> = (1..=5).map(SimDuration::from_millis).collect();
        let dist = Empirical::new(observed.clone());
        let mut rng = SimRng::seed_from_u64(8);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let s = dist.sample(&mut rng);
            assert!(observed.contains(&s));
            seen.insert(s.as_nanos());
        }
        assert_eq!(seen.len(), 5, "all recorded values eventually drawn");
        assert_eq!(dist.mean(), SimDuration::from_millis(3));
        assert_eq!(dist.len(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one recorded sample")]
    fn empirical_rejects_empty() {
        let _ = Empirical::new(vec![]);
    }
}
