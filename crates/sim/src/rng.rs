//! Deterministic, seedable randomness for simulations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seedable random-number generator for simulations.
///
/// Wraps [`rand::rngs::StdRng`] behind a small, stable surface so the
/// rest of the workspace does not depend on `rand`'s API directly, and
/// so every experiment is reproducible from a single `u64` seed.
///
/// # Example
///
/// ```
/// use proteus_sim::SimRng;
/// let mut a = SimRng::seed_from_u64(42);
/// let mut b = SimRng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let u = a.uniform_f64();
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator deterministically seeded from `seed`.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; useful for giving each
    /// simulation component its own stream without cross-coupling.
    #[must_use]
    pub fn fork(&mut self, salt: u64) -> Self {
        let s = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from_u64(s)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.random::<u64>()
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform sample in `[0, 1)` guaranteed to be strictly positive —
    /// convenient for inverse-CDF transforms that take `ln(u)`.
    pub fn positive_uniform_f64(&mut self) -> f64 {
        loop {
            let u = self.uniform_f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        self.inner.random_range(0..bound)
    }

    /// Uniform `usize` index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "index(0) is meaningless");
        self.inner.random_range(0..bound)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability must be in [0,1], got {p}"
        );
        self.uniform_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "independent streams should rarely collide");
    }

    #[test]
    fn forked_streams_are_deterministic_and_distinct() {
        let mut root1 = SimRng::seed_from_u64(9);
        let mut root2 = SimRng::seed_from_u64(9);
        let mut c1 = root1.fork(100);
        let mut c2 = root2.fork(100);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut other = SimRng::seed_from_u64(9).fork(101);
        assert_ne!(
            SimRng::seed_from_u64(9).fork(100).next_u64(),
            other.next_u64()
        );
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
            assert!(rng.index(5) < 5);
        }
    }

    #[test]
    fn chance_frequency_is_sane() {
        let mut rng = SimRng::seed_from_u64(4);
        let hits = (0..20_000).filter(|_| rng.chance(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SimRng::seed_from_u64(0).below(0);
    }
}
