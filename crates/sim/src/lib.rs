//! Discrete-event simulation substrate for the Proteus reproduction.
//!
//! The paper ("Proteus: Power Proportional Memory Cache Cluster in Data
//! Centers", ICDCS 2013) evaluates on a 40-server hardware testbed. This
//! crate provides the laptop-scale substitute: a deterministic,
//! seedable discrete-event simulation (DES) kernel on which
//! `proteus-core` runs the full RBE → web → cache → database pipeline.
//!
//! The crate deliberately contains *no* Proteus-specific logic; it is a
//! small, reusable DES toolkit:
//!
//! - [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated time.
//! - [`EventQueue`] — a priority queue of timestamped events with
//!   deterministic FIFO tie-breaking for equal timestamps.
//! - [`Resource`] — a FIFO multi-server queueing station (models
//!   database connection pools and server service capacity).
//! - [`SimRng`] and [`dist`] — seedable randomness and the latency /
//!   workload distributions used by the experiments (implemented via
//!   inverse-CDF and Box–Muller so only `rand`'s uniform source is
//!   required).
//! - [`Histogram`] — log-bucketed latency histogram with quantile
//!   queries (the evaluation reports 99.9th-percentile response times).
//! - [`TimeSeries`] — slot-bucketed counters for per-slot figures.
//!
//! # Example
//!
//! ```
//! use proteus_sim::{EventQueue, SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Tick(u32) }
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(5), Ev::Tick(1));
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(2), Ev::Tick(0));
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(t, SimTime::ZERO + SimDuration::from_millis(2));
//! assert_eq!(ev, Ev::Tick(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
mod histogram;
mod queue;
mod resource;
mod rng;
mod series;
mod stats;
mod time;

pub use dist::Distribution;
pub use histogram::Histogram;
pub use queue::EventQueue;
pub use resource::Resource;
pub use rng::SimRng;
pub use series::TimeSeries;
pub use stats::Welford;
pub use time::{SimDuration, SimTime};
