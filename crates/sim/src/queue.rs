//! The event queue at the heart of the discrete-event simulation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A priority queue of timestamped events, popped in time order.
///
/// Events scheduled for the *same* instant are popped in the order they
/// were scheduled (FIFO tie-breaking via a monotonically increasing
/// sequence number), which keeps simulations fully deterministic — a
/// plain `BinaryHeap` over equal keys would not guarantee this.
///
/// # Example
///
/// ```
/// use proteus_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let t = SimTime::from_secs(1);
/// q.schedule(t, "first");
/// q.schedule(t, "second");
/// assert_eq!(q.pop(), Some((t, "first")));
/// assert_eq!(q.pop(), Some((t, "second")));
/// assert!(q.is_empty());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq)
        // is popped first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty event queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with capacity for `n` pending events.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(n),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Returns the timestamp of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 'c');
        q.schedule(SimTime::from_secs(1), 'a');
        q.schedule(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "late");
        q.schedule(SimTime::from_secs(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.schedule(SimTime::from_secs(5), "middle");
        assert_eq!(q.pop().unwrap().1, "middle");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(2), ());
        q.schedule(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        let (t, ()) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(1));
    }

    #[test]
    fn len_clear_and_default() {
        let mut q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, 1);
        q.schedule(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
