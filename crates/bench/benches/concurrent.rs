//! Concurrency benchmarks: the single-mutex engine vs the lock-striped
//! sharded engine under multi-threaded load, and get latency while a
//! digest snapshot loop runs (the paper's `get SET_BLOOM_FILTER` must
//! not stall the data path).

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use proteus_bench::concurrency::{
    prepopulate, run_mixed, ConcurrentCache, MixedWorkload, ShardedCache, SingleMutexCache,
};
use proteus_cache::CacheConfig;

const OPS_PER_THREAD: u64 = 20_000;

fn config() -> CacheConfig {
    CacheConfig::with_capacity(256 << 20)
}

fn bench_engine<C: ConcurrentCache>(
    group: &mut criterion::BenchmarkGroup<'_>,
    cache: &Arc<C>,
    threads: usize,
) {
    let label = cache.label();
    group.throughput(Throughput::Elements(OPS_PER_THREAD * threads as u64));
    group.bench_with_input(BenchmarkId::new(label, threads), &threads, |b, &threads| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let workload = MixedWorkload::read_heavy(threads, OPS_PER_THREAD);
                total += run_mixed(cache, workload).elapsed;
            }
            total
        });
    });
}

/// Mixed 90/10 read/write throughput at 1, 2, 4, and 8 threads.
fn thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_thread_scaling");
    group.sample_size(10);

    let single = Arc::new(SingleMutexCache::new(config()));
    let sharded = Arc::new(ShardedCache::new(config()));
    let probe = MixedWorkload::read_heavy(1, 0);
    prepopulate(&*single, probe.key_space, probe.value_len);
    prepopulate(&*sharded, probe.key_space, probe.value_len);

    for threads in [1usize, 2, 4, 8] {
        bench_engine(&mut group, &single, threads);
        bench_engine(&mut group, &sharded, threads);
    }
    group.finish();
}

/// Gets while a digest snapshot loops concurrently: on the baseline
/// every snapshot stops the world; sharded snapshots lock one shard at
/// a time, so unrelated gets keep flowing.
fn gets_under_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("gets_under_snapshot_loop");
    group.sample_size(10);

    let single = Arc::new(SingleMutexCache::new(config()));
    let sharded = Arc::new(ShardedCache::new(config()));
    let probe = MixedWorkload::read_heavy(1, 0);
    prepopulate(&*single, probe.key_space, probe.value_len);
    prepopulate(&*sharded, probe.key_space, probe.value_len);

    fn run<C: ConcurrentCache>(group: &mut criterion::BenchmarkGroup<'_>, cache: &Arc<C>) {
        group.throughput(Throughput::Elements(4 * OPS_PER_THREAD));
        group.bench_function(cache.label(), |b| {
            b.iter_custom(|iters| {
                let started = Instant::now();
                for _ in 0..iters {
                    let workload =
                        MixedWorkload::read_heavy(4, OPS_PER_THREAD).with_snapshot_loop();
                    run_mixed(cache, workload);
                }
                started.elapsed()
            });
        });
    }

    run(&mut group, &single);
    run(&mut group, &sharded);
    group.finish();
}

criterion_group!(benches, thread_scaling, gets_under_snapshot);
criterion_main!(benches);
