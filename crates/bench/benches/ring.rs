//! Ring micro-benchmarks: placement generation, lookup throughput,
//! and the exact-vs-float placement ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use proteus_ring::{
    hash::splitmix64, ModuloStrategy, PlacementStrategy, ProteusPlacement, RandomRing,
};

fn placement_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement_generation");
    for n in [10usize, 20, 40, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| ProteusPlacement::generate(black_box(n)));
        });
    }
    group.finish();
}

fn lookup_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_for");
    let proteus = ProteusPlacement::generate(10);
    let random = RandomRing::with_quadratic_vnodes(10, 0);
    let modulo = ModuloStrategy::new(10);
    let keys: Vec<u64> = (0..1024u64).map(splitmix64).collect();
    group.bench_function("proteus_n10", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) & 1023;
            black_box(proteus.server_for(keys[i], 10))
        });
    });
    group.bench_function("consistent_n10", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) & 1023;
            black_box(random.server_for(keys[i], 10))
        });
    });
    group.bench_function("modulo_n10", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) & 1023;
            black_box(modulo.server_for(keys[i], 10))
        });
    });
    // Lookup cost as the active prefix shrinks (table sizes differ).
    for n in [2usize, 5, 10] {
        group.bench_with_input(BenchmarkId::new("proteus_prefix", n), &n, |b, &n| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) & 1023;
                black_box(proteus.server_for(keys[i], n))
            });
        });
    }
    group.finish();
}

/// Ablation: exact rational placement vs an f64 re-computation of the
/// same construction — measures the imbalance floating point would
/// introduce at N = 64 (reported as a bench so it shows up in every
/// bench run's output).
fn exact_vs_float_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement_exactness");
    group.bench_function("exact_i128_generate_n64", |b| {
        b.iter(|| ProteusPlacement::generate(black_box(64)));
    });
    group.bench_function("float_generate_n64", |b| {
        b.iter(|| float_placement(black_box(64)));
    });
    // Report the imbalance of the float variant once.
    let float_ranges = float_placement(64);
    let worst = float_ranges
        .iter()
        .map(|&(_, len)| (len - 1.0 / (64.0 * 63.0)).abs())
        .fold(0.0f64, f64::max);
    eprintln!("float placement worst per-range drift at N=64: {worst:.3e}");
    group.finish();
}

/// The float analogue of Algorithm 1 (used only by the ablation).
fn float_placement(n: usize) -> Vec<(f64, f64)> {
    let mut ranges: Vec<Vec<(f64, f64)>> = vec![Vec::new(); n];
    ranges[0].push((0.0, 1.0));
    for i in 2..=n {
        let borrow = 1.0 / (i as f64 * (i as f64 - 1.0));
        for j in 1..i {
            let donor = ranges[j - 1]
                .iter_mut()
                .find(|r| r.1 > borrow)
                .expect("feasible donor");
            let new_range = (donor.0, borrow);
            donor.0 += borrow;
            donor.1 -= borrow;
            ranges[i - 1].push(new_range);
        }
    }
    ranges.into_iter().flatten().collect()
}

criterion_group!(
    benches,
    placement_generation,
    lookup_throughput,
    exact_vs_float_ablation
);
criterion_main!(benches);
