//! Algorithm 2 fetch-path benchmarks: the cost of routing decisions
//! in and out of transition windows.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use proteus_cache::{CacheConfig, CacheEngine};
use proteus_core::{Router, Scenario, TransitionManager};
use proteus_sim::{SimDuration, SimTime};
use proteus_store::{ShardedStore, StoreConfig};

fn setup(n: usize) -> (Router, Vec<CacheEngine>, ShardedStore, TransitionManager) {
    let router = Router::new(Scenario::Proteus.strategy(n, 0));
    let mut caches: Vec<CacheEngine> = (0..n)
        .map(|_| CacheEngine::new(CacheConfig::with_capacity(256 << 20)))
        .collect();
    let mut db = ShardedStore::new(StoreConfig {
        object_size: 4096,
        ..StoreConfig::default()
    });
    let tm = TransitionManager::new(n, n);
    // Warm 20k pages.
    for i in 0..20_000u64 {
        let key = format!("page:{i}");
        router.fetch(
            key.as_bytes(),
            SimTime::ZERO,
            &mut caches,
            &mut db,
            &tm,
            true,
        );
    }
    (router, caches, db, tm)
}

fn fetch_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm2_fetch");
    group.sample_size(30);

    group.bench_function("hit_steady_state", |b| {
        let (router, mut caches, mut db, tm) = setup(10);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 20_000;
            let key = format!("page:{i}");
            black_box(router.fetch(
                key.as_bytes(),
                SimTime::ZERO,
                &mut caches,
                &mut db,
                &tm,
                true,
            ))
        });
    });

    group.bench_function("hit_during_transition", |b| {
        let (router, mut caches, mut db, mut tm) = setup(10);
        tm.begin(SimTime::ZERO, 9, SimDuration::from_secs(3600), |i| {
            caches[i].digest_snapshot()
        });
        let t = SimTime::from_secs(1);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 20_000;
            let key = format!("page:{i}");
            black_box(router.fetch(key.as_bytes(), t, &mut caches, &mut db, &tm, true))
        });
    });

    group.bench_function("database_miss", |b| {
        let (router, mut caches, mut db, tm) = setup(10);
        let mut i = 10_000_000u64;
        b.iter(|| {
            i += 1;
            let key = format!("cold:{i}");
            black_box(router.fetch(
                key.as_bytes(),
                SimTime::ZERO,
                &mut caches,
                &mut db,
                &tm,
                true,
            ))
        });
    });

    group.finish();
}

criterion_group!(benches, fetch_paths);
criterion_main!(benches);
