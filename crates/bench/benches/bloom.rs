//! Bloom digest micro-benchmarks: insert/query/remove/snapshot, and
//! the overflow-policy ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use proteus_bloom::{BloomConfig, CountingBloomFilter, DigestSnapshot, OverflowPolicy};

fn digest_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("digest_ops");
    let cfg = BloomConfig::optimal(262_144, 4, 1e-4, 1e-4); // 1 GB server at 4 KB
    group.bench_function("insert", |b| {
        let mut filter = CountingBloomFilter::new(cfg);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            filter.insert(black_box(&i.to_le_bytes()));
        });
    });
    group.bench_function("contains_hit", |b| {
        let mut filter = CountingBloomFilter::new(cfg);
        for i in 0..100_000u64 {
            filter.insert(&i.to_le_bytes());
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 100_000;
            black_box(filter.contains(&i.to_le_bytes()))
        });
    });
    group.bench_function("contains_miss", |b| {
        let mut filter = CountingBloomFilter::new(cfg);
        for i in 0..100_000u64 {
            filter.insert(&i.to_le_bytes());
        }
        let mut i = 1_000_000u64;
        b.iter(|| {
            i += 1;
            black_box(filter.contains(&i.to_le_bytes()))
        });
    });
    group.bench_function("insert_remove_cycle", |b| {
        let mut filter = CountingBloomFilter::new(cfg);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let key = i.to_le_bytes();
            filter.insert(&key);
            filter.remove(black_box(&key));
        });
    });
    group.finish();
}

fn snapshot_and_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("digest_broadcast");
    group.sample_size(20);
    let cfg = BloomConfig::optimal(262_144, 4, 1e-4, 1e-4);
    let mut filter = CountingBloomFilter::new(cfg);
    for i in 0..262_144u64 {
        filter.insert(&i.to_le_bytes());
    }
    group.bench_function("snapshot", |b| {
        b.iter(|| black_box(filter.snapshot()));
    });
    let snap = filter.snapshot();
    group.bench_function("serialize", |b| {
        b.iter(|| black_box(DigestSnapshot::from_filter(&snap).to_bytes()));
    });
    let bytes = DigestSnapshot::from_filter(&snap).to_bytes();
    group.bench_function("deserialize", |b| {
        b.iter(|| black_box(DigestSnapshot::from_bytes(&bytes).unwrap()));
    });
    group.finish();
}

/// Ablation: saturating vs wrapping counters under churn — same cost,
/// different safety (Fig. 8 measures the error-rate side).
fn overflow_policy_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("overflow_policy");
    for (name, policy) in [
        ("saturate", OverflowPolicy::Saturate),
        ("wrap", OverflowPolicy::Wrap),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &policy| {
            let cfg = BloomConfig::new(1 << 12, 2, 4); // narrow: overflow is hot
            let mut filter = CountingBloomFilter::with_policy(cfg, policy);
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let key = (i % 512).to_le_bytes();
                filter.insert(&key);
                if i.is_multiple_of(3) {
                    filter.remove(black_box(&key));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    digest_ops,
    snapshot_and_broadcast,
    overflow_policy_ablation
);
criterion_main!(benches);
