//! Cache-engine micro-benchmarks: the get/put hot paths at realistic
//! object sizes, eviction pressure, and digest-maintenance overhead.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use proteus_bloom::BloomConfig;
use proteus_cache::{CacheConfig, CacheEngine};
use proteus_sim::SimTime;

fn engine_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_engine");
    group.throughput(Throughput::Elements(1));
    let t = SimTime::ZERO;

    group.bench_function("get_hit_4k", |b| {
        let mut cache = CacheEngine::new(CacheConfig::with_capacity(256 << 20));
        for i in 0..10_000u64 {
            cache.put(&i.to_le_bytes(), vec![0u8; 4096], t);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 10_000;
            black_box(cache.get(&i.to_le_bytes(), t).is_some())
        });
    });

    group.bench_function("get_miss", |b| {
        let mut cache = CacheEngine::new(CacheConfig::with_capacity(64 << 20));
        let mut i = 1_000_000u64;
        b.iter(|| {
            i += 1;
            black_box(cache.get(&i.to_le_bytes(), t).is_none())
        });
    });

    group.bench_function("put_4k_no_eviction", |b| {
        let mut cache = CacheEngine::new(CacheConfig::with_capacity(8 << 30));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            cache.put(black_box(&i.to_le_bytes()), vec![0u8; 4096], t);
        });
    });

    group.bench_function("put_4k_with_eviction", |b| {
        // Tight capacity: every put evicts.
        let mut cache = CacheEngine::new(CacheConfig::with_capacity(4 << 20));
        for i in 0..1000u64 {
            cache.put(&i.to_le_bytes(), vec![0u8; 4096], t);
        }
        let mut i = 1000u64;
        b.iter(|| {
            i += 1;
            cache.put(black_box(&i.to_le_bytes()), vec![0u8; 4096], t);
        });
    });

    // Digest-maintenance ablation: a tiny digest vs the production one.
    group.bench_function("put_4k_small_digest", |b| {
        let cfg = CacheConfig::with_capacity(8 << 30).digest(BloomConfig::new(1 << 10, 3, 4));
        let mut cache = CacheEngine::new(cfg);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            cache.put(black_box(&i.to_le_bytes()), vec![0u8; 4096], t);
        });
    });

    group.finish();
}

fn digest_snapshot_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_digest_snapshot");
    group.sample_size(20);
    let mut cache = CacheEngine::new(CacheConfig::with_capacity(256 << 20));
    for i in 0..50_000u64 {
        cache.put(&i.to_le_bytes(), vec![0u8; 4096], SimTime::ZERO);
    }
    group.bench_function("snapshot_50k_items", |b| {
        b.iter(|| black_box(cache.digest_snapshot()));
    });
    group.finish();
}

criterion_group!(benches, engine_ops, digest_snapshot_cost);
criterion_main!(benches);
