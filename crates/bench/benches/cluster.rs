//! End-to-end cluster-simulation benchmarks: a miniature day per
//! scenario (the engine behind every figure), plus DES event
//! throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use proteus_core::{ClusterConfig, ClusterSim, ProvisioningPlan, Scenario};
use proteus_sim::{EventQueue, SimTime};
use proteus_workload::Trace;

fn mini_day_per_scenario(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_mini_day");
    group.sample_size(10);
    let config = ClusterConfig::small();
    let trace = Trace::synthesize(&config.trace_config(200.0), 1);
    let plan = ProvisioningPlan::load_proportional(
        &trace.requests_per_slot(config.slot, config.slots),
        config.cache_servers,
        2,
    );
    for scenario in Scenario::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(scenario.name()),
            &scenario,
            |b, &scenario| {
                b.iter(|| {
                    black_box(ClusterSim::new(config.clone(), scenario, &trace, &plan, 5).run())
                });
            },
        );
    }
    group.finish();
}

fn des_event_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_substrate");
    group.bench_function("event_queue_push_pop", |b| {
        let mut queue = EventQueue::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            queue.schedule(SimTime::from_nanos(t ^ 0x5555), t);
            if queue.len() > 1024 {
                black_box(queue.pop());
            }
        });
    });
    group.bench_function("trace_synthesis_10s", |b| {
        let config = ClusterConfig::small();
        let mut tc = config.trace_config(500.0);
        tc.duration = proteus_sim::SimDuration::from_secs(10);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(Trace::synthesize(&tc, seed))
        });
    });
    group.finish();
}

criterion_group!(benches, mini_day_per_scenario, des_event_throughput);
criterion_main!(benches);
