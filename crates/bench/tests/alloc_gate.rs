//! Allocation-regression gate for the zero-copy hot path.
//!
//! Counts heap acquisitions with the crate's counting global allocator
//! and fails if the warmed read path or the borrowing parser starts
//! allocating again. Unlike the throughput numbers, these counts are
//! exact and identical on any hardware, so the budgets are tight.
//!
//! Everything runs inside a single `#[test]` — the test harness runs
//! sibling tests on concurrent threads, and their allocations would
//! bleed into our measurement windows otherwise.

use proteus_bench::alloc_track::{is_counting, measure, CountingAlloc};
use proteus_cache::{CacheConfig, ShardedEngine, StorageKind};
use proteus_net::{read_raw_command, RawCommand, WireBuf};
use proteus_sim::SimTime;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const GET_OPS: u64 = 10_000;
const PARSE_COMMANDS: u64 = 1_000;

/// Borrowed parsing materialises at most the multi-get key list per
/// command once the buffer pool is warm.
const PARSE_BUDGET: u64 = 2 * PARSE_COMMANDS;

#[test]
fn hot_paths_stay_within_allocation_budget() {
    assert!(
        is_counting(),
        "counting allocator not registered — the gate would pass vacuously"
    );

    // Warmed gets: handing out the shared buffer is a refcount bump,
    // so the budget is zero. No slack: a single allocation per get is
    // exactly the regression this gate exists to catch.
    let engine = ShardedEngine::new(CacheConfig::with_capacity(64 << 20));
    for i in 0..512u64 {
        engine.put(&i.to_le_bytes(), vec![9u8; 128], SimTime::ZERO);
    }
    let ((), warm) = measure(|| {
        for i in 0..GET_OPS {
            let key = (i % 512).to_le_bytes();
            let hit = engine.get(&key, SimTime::ZERO);
            assert!(hit.is_some(), "prepopulated key missing");
            std::hint::black_box(&hit);
        }
    });
    assert_eq!(
        warm.allocations, 0,
        "warmed gets allocated {} times over {GET_OPS} ops — \
         the shared-buffer read path has regressed to copying",
        warm.allocations
    );

    // The slab backend hands out views into its pages: a warmed get is
    // still a refcount bump on the page, so its budget is also zero.
    let slab = ShardedEngine::new(CacheConfig::with_capacity(64 << 20).storage(StorageKind::Slab));
    for i in 0..512u64 {
        slab.put(&i.to_le_bytes(), vec![7u8; 128], SimTime::ZERO);
    }
    let ((), slab_warm) = measure(|| {
        for i in 0..GET_OPS {
            let key = (i % 512).to_le_bytes();
            let hit = slab.get(&key, SimTime::ZERO);
            assert!(hit.is_some(), "prepopulated slab key missing");
            std::hint::black_box(&hit);
        }
    });
    assert_eq!(
        slab_warm.allocations, 0,
        "warmed slab gets allocated {} times over {GET_OPS} ops — \
         page views have regressed to copying",
        slab_warm.allocations
    );

    // Borrowed parsing over a reused buffer pool: after a warm-up
    // drain sizes the pool, steady state allocates only the per-command
    // key list for multi-gets, never the key or value bytes.
    let mut stream = Vec::new();
    for i in 0..PARSE_COMMANDS {
        if i % 2 == 0 {
            stream.extend_from_slice(format!("get a:{i} b:{i}\r\n").as_bytes());
        } else {
            stream.extend_from_slice(format!("set k:{i} 0 0 32\r\n").as_bytes());
            stream.extend_from_slice(&[b'v'; 32]);
            stream.extend_from_slice(b"\r\n");
        }
    }
    let drain = |buf: &mut WireBuf| {
        let mut input = &stream[..];
        let mut parsed = 0u64;
        while let Ok(cmd) = read_raw_command(&mut input, buf) {
            assert!(!matches!(cmd, RawCommand::Quit));
            std::hint::black_box(&cmd);
            parsed += 1;
        }
        assert_eq!(parsed, PARSE_COMMANDS);
    };
    let mut buf = WireBuf::new();
    drain(&mut buf); // warm the pool outside the window
    let ((), parse) = measure(|| drain(&mut buf));
    assert!(
        parse.allocations <= PARSE_BUDGET,
        "borrowed parser allocated {} times over {PARSE_COMMANDS} commands \
         (budget {PARSE_BUDGET}) — per-command buffers are no longer reused",
        parse.allocations
    );
}
