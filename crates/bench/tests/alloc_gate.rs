//! Allocation-regression gate for the zero-copy hot path.
//!
//! Counts heap acquisitions with the crate's counting global allocator
//! and fails if the warmed read path or the borrowing parser starts
//! allocating again. Unlike the throughput numbers, these counts are
//! exact and identical on any hardware, so the budgets are tight.
//!
//! Everything runs inside a single `#[test]` — the test harness runs
//! sibling tests on concurrent threads, and their allocations would
//! bleed into our measurement windows otherwise.

use std::io::Write;
use std::time::Duration;

use proteus_agg::{build_request, http_get_into, METRICS_PATH};
use proteus_bench::alloc_track::{is_counting, measure, CountingAlloc};
use proteus_cache::{CacheConfig, ShardedEngine, StorageKind};
use proteus_net::{read_raw_command, RawCommand, WireBuf};
use proteus_sim::SimTime;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const GET_OPS: u64 = 10_000;
const PARSE_COMMANDS: u64 = 1_000;

/// Borrowed parsing materialises at most the multi-get key list per
/// command once the buffer pool is warm.
const PARSE_BUDGET: u64 = 2 * PARSE_COMMANDS;

/// A warmed scrape over a recycled buffer is socket I/O into existing
/// capacity: connect, write a prebuilt request, read into the reused
/// `Vec`. A handful of allocations of slack covers libstd internals;
/// anything beyond that means the observer's scrape path has regressed
/// to per-tick buffers.
const SCRAPE_BUDGET: u64 = 8;

/// The counting allocator tallies process-wide, and the test harness's
/// own housekeeping thread occasionally allocates inside a measurement
/// window. A genuine hot-path regression allocates on *every* run —
/// O(ops) times, not once or twice — so the minimum over a few
/// attempts isolates the code path from scheduler noise without
/// loosening any budget.
fn min_allocations(runs: usize, mut f: impl FnMut()) -> u64 {
    (0..runs)
        .map(|_| measure(&mut f).1.allocations)
        .min()
        .expect("at least one run")
}

#[test]
fn hot_paths_stay_within_allocation_budget() {
    assert!(
        is_counting(),
        "counting allocator not registered — the gate would pass vacuously"
    );

    // Warmed gets: handing out the shared buffer is a refcount bump,
    // so the budget is zero. No slack: a single allocation per get is
    // exactly the regression this gate exists to catch.
    let engine = ShardedEngine::new(CacheConfig::with_capacity(64 << 20));
    for i in 0..512u64 {
        engine.put(&i.to_le_bytes(), vec![9u8; 128], SimTime::ZERO);
    }
    let warm = min_allocations(3, || {
        for i in 0..GET_OPS {
            let key = (i % 512).to_le_bytes();
            let hit = engine.get(&key, SimTime::ZERO);
            assert!(hit.is_some(), "prepopulated key missing");
            std::hint::black_box(&hit);
        }
    });
    assert_eq!(
        warm, 0,
        "warmed gets allocated {warm} times over {GET_OPS} ops — \
         the shared-buffer read path has regressed to copying"
    );

    // The slab backend hands out views into its pages: a warmed get is
    // still a refcount bump on the page, so its budget is also zero.
    let slab = ShardedEngine::new(CacheConfig::with_capacity(64 << 20).storage(StorageKind::Slab));
    for i in 0..512u64 {
        slab.put(&i.to_le_bytes(), vec![7u8; 128], SimTime::ZERO);
    }
    let slab_warm = min_allocations(3, || {
        for i in 0..GET_OPS {
            let key = (i % 512).to_le_bytes();
            let hit = slab.get(&key, SimTime::ZERO);
            assert!(hit.is_some(), "prepopulated slab key missing");
            std::hint::black_box(&hit);
        }
    });
    assert_eq!(
        slab_warm, 0,
        "warmed slab gets allocated {slab_warm} times over {GET_OPS} ops — \
         page views have regressed to copying"
    );

    // Borrowed parsing over a reused buffer pool: after a warm-up
    // drain sizes the pool, steady state allocates only the per-command
    // key list for multi-gets, never the key or value bytes.
    let mut stream = Vec::new();
    for i in 0..PARSE_COMMANDS {
        if i % 2 == 0 {
            stream.extend_from_slice(format!("get a:{i} b:{i}\r\n").as_bytes());
        } else {
            stream.extend_from_slice(format!("set k:{i} 0 0 32\r\n").as_bytes());
            stream.extend_from_slice(&[b'v'; 32]);
            stream.extend_from_slice(b"\r\n");
        }
    }
    let drain = |buf: &mut WireBuf| {
        let mut input = &stream[..];
        let mut parsed = 0u64;
        while let Ok(cmd) = read_raw_command(&mut input, buf) {
            assert!(!matches!(cmd, RawCommand::Quit));
            std::hint::black_box(&cmd);
            parsed += 1;
        }
        assert_eq!(parsed, PARSE_COMMANDS);
    };
    let mut buf = WireBuf::new();
    drain(&mut buf); // warm the pool outside the window
    let parse = min_allocations(3, || drain(&mut buf));
    assert!(
        parse <= PARSE_BUDGET,
        "borrowed parser allocated {parse} times over {PARSE_COMMANDS} commands \
         (budget {PARSE_BUDGET}) — per-command buffers are no longer reused"
    );

    // The observer's scrape I/O path: prebuilt request bytes, response
    // read into a buffer recycled across ticks. Measured against a raw
    // responder thread that writes a canned response built before the
    // window, so the only allocations in the window are the client's.
    // The allocator counts process-wide — a real MetricsServer would
    // bleed its JSON rendering into the measurement.
    let canned = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: application/json\r\n\r\n{}",
        r#"[{"name":"proteus_get_hits_total","labels":{},"type":"counter","value":42}]"#
    )
    .into_bytes();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    const WARM_SCRAPES: usize = 2;
    const MEASURED_SCRAPES: usize = 3; // min over these three
    const SCRAPES: usize = WARM_SCRAPES + MEASURED_SCRAPES;
    let responder = std::thread::spawn(move || {
        for _ in 0..SCRAPES {
            if let Ok((mut stream, _)) = listener.accept() {
                let _ = stream.write_all(&canned);
            }
        }
    });
    let request = build_request(METRICS_PATH);
    let timeout = Duration::from_secs(2);
    let mut body = Vec::new();
    for _ in 0..WARM_SCRAPES {
        // First call grows `body` to the response size; second proves
        // outside the window that the warm path works at all.
        http_get_into(addr, &request, timeout, timeout, &mut body).unwrap();
    }
    let scrape = min_allocations(MEASURED_SCRAPES, || {
        let offset = http_get_into(addr, &request, timeout, timeout, &mut body).unwrap();
        assert!(body.len() > offset, "scrape returned an empty body");
    });
    responder.join().unwrap();
    assert!(
        scrape <= SCRAPE_BUDGET,
        "warmed scrape allocated {scrape} times (budget {SCRAPE_BUDGET}) — \
         the reused response buffer or prebuilt request has regressed"
    );
}
