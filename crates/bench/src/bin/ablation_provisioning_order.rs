//! Ablation: the fixed provisioning order on a heterogeneous fleet
//! (Section III-A).
//!
//! "Well designed order further improves power savings. For example,
//! the decreasing order of server efficiency should be better than a
//! random order, where server efficiency is defined as the amount of
//! workload served per unit of energy." This experiment builds a fleet
//! whose servers' idle draw varies 2:1 (old vs new hardware) and runs
//! Proteus with three provisioning orders: most-efficient-first,
//! random, and least-efficient-first. Load balance and latency are
//! identical by construction — only the energy bill changes, because
//! the order decides *which* servers the always-on prefix contains.
//!
//! Regenerate with: `cargo run --release -p proteus-bench --bin ablation_provisioning_order`

use proteus_bench::{Evaluation, SIM_SEED};
use proteus_core::{ClusterSim, PowerModel, Scenario};

/// A 10-server fleet spanning two hardware generations: idle draw
/// 45..=90 W, peak tracking idle.
fn heterogeneous_fleet(n: usize) -> Vec<PowerModel> {
    (0..n)
        .map(|i| {
            let idle = 45.0 + 45.0 * i as f64 / (n - 1) as f64;
            PowerModel {
                off_w: 5.0,
                idle_w: idle,
                peak_w: idle + 35.0,
                boot_w: idle + 20.0,
            }
        })
        .collect()
}

fn main() {
    let eval = Evaluation::short();
    let n = eval.config.cache_servers;
    let efficient_first = heterogeneous_fleet(n);
    let mut least_first = efficient_first.clone();
    least_first.reverse();
    // A fixed "random" permutation (deterministic for reproducibility).
    let mut random_order = efficient_first.clone();
    for i in (1..random_order.len()).rev() {
        random_order.swap(i, (i * 7 + 3) % (i + 1));
    }
    let orders = [
        ("most-efficient-first", efficient_first),
        ("random order", random_order),
        ("least-efficient-first", least_first),
    ];
    println!(
        "heterogeneous fleet (idle 45–90 W), Proteus, same trace and plan; \
         only the provisioning order differs"
    );
    println!(
        "{:<24} {:>14} {:>14} {:>14}",
        "order", "cache Wh", "vs best", "worst p99.9"
    );
    let mut best = f64::INFINITY;
    let mut rows = Vec::new();
    for (name, models) in orders {
        eprintln!("  running {name} ...");
        let mut config = eval.config.clone();
        config.per_server_power = Some(models);
        let report =
            ClusterSim::new(config, Scenario::Proteus, &eval.trace, &eval.plan, SIM_SEED).run();
        let wh = report.cache_energy_wh();
        best = best.min(wh);
        rows.push((name, wh, report));
    }
    for (name, wh, report) in rows {
        println!(
            "{:<24} {:>14.1} {:>13.1}% {:>12.0}ms",
            name,
            wh,
            100.0 * (wh / best - 1.0),
            report
                .worst_bucket_quantile(0.999)
                .map_or(0.0, |d| d.as_millis_f64()),
        );
    }
    println!(
        "\nexpected: most-efficient-first wins — the deep-valley prefix runs \
         on the cheapest hardware — while latency is order-independent. \
         This is Section III-A's argument for choosing the fixed order \
         deliberately; Proteus works with any of them."
    );
}
