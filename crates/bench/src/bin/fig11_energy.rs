//! Fig. 11: total energy per scenario, whole cluster and cache tier.
//!
//! Paper result: "with Proteus, we are able to save roughly 10% energy
//! over the entire cluster, and 23% over the cache cluster without
//! delay penalty".
//!
//! Regenerate with: `cargo run --release -p proteus-bench --bin fig11_energy`

use proteus_bench::Evaluation;
use proteus_core::Scenario;

fn main() {
    let eval = Evaluation::standard();
    let reports = eval.run_all();
    let static_total = reports
        .iter()
        .find(|(sc, _)| *sc == Scenario::Static)
        .map(|(_, r)| r.total_energy_wh())
        .expect("static scenario present");
    let static_cache = reports
        .iter()
        .find(|(sc, _)| *sc == Scenario::Static)
        .map(|(_, r)| r.cache_energy_wh())
        .expect("static scenario present");

    println!("Fig. 11 — total energy over the simulated day");
    println!(
        "{:<16} {:>12} {:>12} {:>13} {:>13} {:>14}",
        "scenario", "total Wh", "cache Wh", "total saved", "cache saved", "worst p99.9"
    );
    for (sc, report) in &reports {
        println!(
            "{:<16} {:>12.1} {:>12.1} {:>12.1}% {:>12.1}% {:>12.0}ms",
            sc.name(),
            report.total_energy_wh(),
            report.cache_energy_wh(),
            100.0 * (1.0 - report.total_energy_wh() / static_total),
            100.0 * (1.0 - report.cache_energy_wh() / static_cache),
            report
                .worst_bucket_quantile(0.999)
                .map_or(0.0, |d| d.as_millis_f64()),
        );
    }
    println!(
        "\npaper anchor: ≈10% whole-cluster and ≈23% cache-tier savings for \
         Proteus, equal to Naive's and Consistent's savings — but only \
         Proteus achieves them \"without delay penalty\" (compare the worst \
         p99.9 column with Fig. 9)."
    );
}
