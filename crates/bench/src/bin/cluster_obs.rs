//! Live smoke check for the cluster observability plane.
//!
//! Stands up a real 4-server TCP cache tier with per-server metrics
//! endpoints, drives load through the cluster client (including a
//! provisioning transition), and runs a [`ClusterObserver`] against
//! the endpoints. Gates, with hard assertions:
//!
//! 1. **Merge fidelity** — the cluster p99 computed from scraped,
//!    remotely-merged histograms equals the servers' own in-process
//!    merged snapshot (the JSON wire is lossless, so the match is
//!    exact, not approximate).
//! 2. **Health series sanity** — every server fresh, aggregate ops
//!    accounted, imbalance ≥ 1 (it is max/mean by construction).
//! 3. **Energy monotonicity** — the wall-clock energy account grows
//!    strictly across ticks, and the proportionality ratio is ≥ 1.
//!
//! `--smoke` is the CI entry point: fewer keys, hard assertions,
//! non-zero exit on regression.
//!
//! Run with: `cargo run --release -p proteus-bench --bin cluster_obs -- --smoke`

use std::net::SocketAddr;
use std::time::Duration;

use parking_lot::Mutex;
use proteus_agg::{ClusterObserver, ObserverConfig};
use proteus_cache::CacheConfig;
use proteus_core::Scenario;
use proteus_net::{CacheServer, ClusterClient};
use proteus_obs::{HistogramSnapshot, MetricValue, MetricsServer};
use proteus_store::{ShardedStore, StoreConfig};

const N: usize = 4;

fn merged_command_histogram(metrics: &[proteus_obs::Metric]) -> HistogramSnapshot {
    let mut merged = HistogramSnapshot::empty();
    for m in metrics {
        if m.name == "proteus_command_latency_seconds" {
            if let MetricValue::Histogram(h) = &m.value {
                merged.merge(h);
            }
        }
    }
    merged
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let keys_n: u32 = if smoke { 300 } else { 3000 };

    let servers: Vec<CacheServer> = (0..N)
        .map(|_| CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(8 << 20)).unwrap())
        .collect();
    let addrs: Vec<SocketAddr> = servers.iter().map(CacheServer::addr).collect();
    let endpoints: Vec<MetricsServer> = servers
        .iter()
        .map(|s| MetricsServer::spawn("127.0.0.1:0", s.metric_source()).unwrap())
        .collect();
    let mut cluster = ClusterClient::connect(&addrs, Scenario::Proteus.strategy(N, 0)).unwrap();
    let db = Mutex::new(ShardedStore::new(StoreConfig {
        object_size: 128,
        ..StoreConfig::default()
    }));

    let observer = ClusterObserver::new(ObserverConfig {
        connect_timeout: Duration::from_millis(500),
        read_timeout: Duration::from_secs(2),
        ..ObserverConfig::default()
    });
    for e in &endpoints {
        observer.add_server(e.local_addr());
    }

    println!(
        "cluster_obs: {N} live servers, {keys_n} keys{}",
        if smoke { ", smoke mode" } else { "" }
    );

    let keys: Vec<Vec<u8>> = (0..keys_n)
        .map(|i| format!("page:{i}").into_bytes())
        .collect();
    for k in &keys {
        cluster.fetch(k, &db).unwrap();
    }
    observer.tick();
    let joules_after_first = observer.energy().joules();

    cluster.begin_transition(N - 1).unwrap();
    for k in &keys {
        cluster.fetch(k, &db).unwrap();
    }
    cluster.end_transition();
    // A tiny real interval so the second tick integrates nonzero time
    // and per-server rates are well-defined.
    std::thread::sleep(Duration::from_millis(50));
    let snap = observer.tick();

    // --- merge fidelity -------------------------------------------
    let oracle = {
        let mut merged = HistogramSnapshot::empty();
        for s in &servers {
            merged.merge(&merged_command_histogram(&s.metric_source()()));
        }
        merged
    };
    let scraped = merged_command_histogram(&snap.merged);
    assert!(scraped.count() > 0, "no latencies scraped");
    assert_eq!(scraped, oracle, "remote merge must equal in-process merge");
    let p99 = scraped.quantile(0.99).unwrap_or_default();
    println!(
        "  merged histogram   : {} samples, p99 {:?} (exact match with in-process merge)",
        scraped.count(),
        p99
    );

    // --- health series --------------------------------------------
    let fresh = snap.servers.iter().filter(|s| s.fresh).count();
    assert_eq!(fresh, N, "all endpoints must be fresh");
    assert_eq!(snap.active_servers, N);
    assert!(
        snap.ops_per_sec > 0.0,
        "load must register as cluster ops/s"
    );
    let imbalance = snap.imbalance.expect("load was observed");
    assert!(imbalance >= 1.0, "max/mean is >= 1 by construction");
    println!(
        "  health             : {fresh}/{N} fresh, {:.0} ops/s, imbalance {imbalance:.3}, hit ratio {:?}",
        snap.ops_per_sec, snap.hit_ratio
    );

    // --- energy monotonicity --------------------------------------
    std::thread::sleep(Duration::from_millis(50));
    observer.tick();
    let meter = observer.energy();
    assert!(
        meter.joules() > joules_after_first,
        "energy must accumulate across ticks: {} then {}",
        joules_after_first,
        meter.joules()
    );
    assert!(meter.server_seconds() > 0.0);
    let proportionality = meter.proportionality().expect("energy accumulated");
    assert!(
        proportionality >= 1.0,
        "a cluster cannot beat the proportional oracle: {proportionality}"
    );
    println!(
        "  energy             : {:.1} J measured, {:.1} J oracle, proportionality {proportionality:.2}, {:.1} server-seconds",
        meter.joules(),
        meter.oracle_joules(),
        meter.server_seconds()
    );

    let (scrapes, failures) = observer.scrape_totals();
    assert_eq!(failures, 0, "no scrape may fail against live endpoints");
    println!("cluster_obs gate passed ({scrapes} scrapes, 0 failures)");

    drop(endpoints);
    for s in servers {
        s.stop();
    }
}
