//! Ablation: digest size — how Bloom false positives surface in the
//! running system.
//!
//! Fig. 7/8 measure the filter in isolation; this experiment shrinks
//! the per-server digest inside full Proteus runs and counts
//! Algorithm 2 line 9 events (digest said "hot", the old server
//! missed, and the request paid an extra cache round-trip before the
//! database). Undersized digests waste bandwidth and latency but never
//! lose data — the false-positive path still ends at the database.
//!
//! Regenerate with: `cargo run --release -p proteus-bench --bin ablation_digest_size`

use proteus_bench::{Evaluation, SIM_SEED};
use proteus_bloom::BloomConfig;
use proteus_core::{ClusterSim, Scenario};

fn main() {
    let eval = Evaluation::short();
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>14}",
        "digest", "digest FP", "migrated", "db fetches", "worst p99.9"
    );
    for kb in [2u64, 8, 32, 128, 512] {
        let counters = (kb * 1024 * 8 / 4) as usize; // b = 4
        let mut config = eval.config.clone();
        config.digest_override = Some(BloomConfig::new(counters, 4, 4));
        let report =
            ClusterSim::new(config, Scenario::Proteus, &eval.trace, &eval.plan, SIM_SEED).run();
        println!(
            "{:>8}KB {:>12} {:>12} {:>12} {:>12.0}ms",
            kb,
            report.counters.database_false_positive,
            report.counters.migrated,
            report.counters.database_total(),
            report
                .worst_bucket_quantile(0.999)
                .map_or(0.0, |d| d.as_millis_f64()),
        );
    }
    println!(
        "\nexpected: false-positive detours collapse to ~zero once the digest \
         reaches the Eq. 10 sizing (the paper's 512 KB choice); correctness \
         is unaffected at every size."
    );
}
