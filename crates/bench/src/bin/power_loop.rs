//! The full paper story as one self-driving run: a compressed diurnal
//! day replayed over live TCP against a controller-steered cluster.
//!
//! Four real cache servers come up all-on; a [`ReplayPacer`] walks a
//! [`CompressedDay`] (time compressed, load levels verbatim) through
//! the cluster client while a [`ClusterController`] closes the
//! observe → decide → actuate loop on its own cadence. This is
//! Figs. 10–11 of the paper shrunk from 24 hours to seconds: n(t)
//! follows the load curve down into the night and back up the morning
//! ramp, and the energy account lands near the proportional oracle.
//!
//! Gates, with hard assertions:
//!
//! 1. **Zero client errors** — every replayed request completes even
//!    while transition windows open and close mid-stream.
//! 2. **Power proportionality** — measured joules stay within 1.5× the
//!    oracle (fewest balanced servers for the observed demand), and
//!    the cluster actually sheds machine-time (server-seconds well
//!    below all-on × elapsed).
//! 3. **Delay bound** — the worst windowed cluster p99 the controller
//!    observed stays under the paper's 0.5 s bound.
//! 4. **Both directions** — at least one scale-down and one scale-up
//!    window closed (a flat n(t) would trivially pass gate 2 at peak).
//! 5. **Gap-free trace** — `/trace.jsonl` replays decisions and the
//!    transitions they caused with contiguous seqs, every
//!    `controller_decision` followed by its matching
//!    `transition_begin`.
//!
//! `--smoke` is the CI entry point: one 12 s compressed day.
//!
//! Run with: `cargo run --release -p proteus-bench --bin power_loop -- --smoke`

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use proteus_agg::{http_get, json, ClusterObserver, ObserverConfig};
use proteus_cache::CacheConfig;
use proteus_core::Scenario;
use proteus_ctl::{ActuationConfig, ClusterController, PolicyConfig, StepAction, WallPolicy};
use proteus_net::{CacheServer, ClusterClient};
use proteus_obs::{MetricsServer, ScrapeLimits};
use proteus_sim::SimDuration;
use proteus_store::{ShardedStore, StoreConfig};
use proteus_workload::{CompressedDay, DiurnalCurve, ReplayPacer};

const N: usize = 4;
const CAPACITY_OPS: f64 = 100.0;
const MEAN_RATE: f64 = 200.0;
const PEAK_TO_NADIR: f64 = 3.0;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // One simulated day in 12 s (smoke) or 30 s. Rates are replayed
    // verbatim, so the controller faces the real load levels either way.
    let compression = if smoke { 7200.0 } else { 2880.0 };
    let day = CompressedDay::new(
        DiurnalCurve::new(MEAN_RATE, PEAK_TO_NADIR, SimDuration::from_secs(86_400)),
        compression,
    );
    let wall_day = day.wall_day();
    let tick = Duration::from_millis(200);

    let servers: Vec<CacheServer> = (0..N)
        .map(|_| CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(8 << 20)).unwrap())
        .collect();
    let addrs: Vec<SocketAddr> = servers.iter().map(CacheServer::addr).collect();
    let endpoints: Vec<MetricsServer> = servers
        .iter()
        .map(|s| MetricsServer::spawn("127.0.0.1:0", s.metric_source()).unwrap())
        .collect();
    let client = Arc::new(RwLock::new(
        ClusterClient::connect(&addrs, Scenario::Proteus.strategy(N, 0)).unwrap(),
    ));
    let tracer = Arc::clone(client.read().tracer());
    let source = client.read().metric_source();
    let exposition =
        MetricsServer::spawn_traced("127.0.0.1:0", source, tracer, ScrapeLimits::default())
            .unwrap();

    let observer = Arc::new(ClusterObserver::new(ObserverConfig {
        connect_timeout: Duration::from_millis(500),
        read_timeout: Duration::from_secs(2),
        server_capacity_ops: CAPACITY_OPS,
        ..ObserverConfig::default()
    }));
    for e in &endpoints {
        observer.add_server(e.local_addr());
    }
    let policy = WallPolicy::new(PolicyConfig {
        min_servers: 1,
        max_step: 2,
        cooldown: Duration::from_millis(600),
        ..PolicyConfig::for_cluster(N, CAPACITY_OPS)
    });
    let bound = Duration::from_nanos(policy.config().points.bound_ns());
    let mut controller = ClusterController::new(
        Arc::clone(&observer),
        Arc::clone(&client),
        endpoints.iter().map(MetricsServer::local_addr).collect(),
        policy,
        ActuationConfig {
            boot_delay: Duration::from_millis(150),
            drain: Duration::from_millis(150),
        },
    );

    println!(
        "power_loop: {N} live servers, one simulated day in {:.0} s (compression {compression:.0}x), \
         load {:.0}..{:.0} ops/s",
        wall_day.as_secs_f64(),
        day.curve().nadir_rate(),
        day.curve().peak_rate()
    );

    let db = Mutex::new(ShardedStore::new(StoreConfig {
        object_size: 128,
        ..StoreConfig::default()
    }));
    let keys: Vec<Vec<u8>> = (0..400u32)
        .map(|i| format!("page:{i}").into_bytes())
        .collect();
    for k in &keys {
        client.read().fetch(k, &db).unwrap();
    }

    // --- Replay the day, controller online. -----------------------
    let mut pacer = ReplayPacer::new(day);
    let mut errors: u64 = 0;
    let mut cursor = 0usize;
    let mut shrinks = 0u32;
    let mut grows = 0u32;
    let mut n_min = N;
    let mut n_max = 0usize;
    let mut worst_p99 = Duration::ZERO;
    let start = Instant::now();
    let mut next_tick = Duration::ZERO;
    loop {
        let elapsed = start.elapsed();
        if elapsed >= wall_day {
            break;
        }
        for _ in 0..pacer.due(elapsed) {
            let key = &keys[cursor % keys.len()];
            cursor += 1;
            if client.read().fetch(key, &db).is_err() {
                errors += 1;
            }
        }
        if elapsed >= next_tick {
            next_tick += tick;
            let report = controller.step();
            match report.action {
                StepAction::WindowClosed { from, to } if to < from => shrinks += 1,
                StepAction::WindowClosed { .. } => grows += 1,
                _ => {}
            }
            if let Some(p99) = report.signal.p99 {
                worst_p99 = worst_p99.max(p99);
            }
            let active = client.read().active();
            n_min = n_min.min(active);
            n_max = n_max.max(active);
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    observer.tick();
    let meter = observer.energy();
    let elapsed = meter.elapsed().expect("energy was sampled").as_secs_f64();

    // --- Gate 1: zero client errors -------------------------------
    assert_eq!(errors, 0, "replayed requests must never error");
    println!(
        "  replay             : {} requests issued, 0 errors, n(t) ranged {n_min}..{n_max}",
        pacer.issued()
    );

    // --- Gate 4: n(t) moved both directions -----------------------
    assert!(shrinks > 0, "the night must shed servers");
    assert!(grows > 0, "the morning ramp must grow them back");
    println!(
        "  transitions        : {shrinks} shrink(s), {grows} grow(s), {} decisions",
        controller.decisions()
    );

    // --- Gate 2: energy near the proportional oracle --------------
    let proportionality = meter.proportionality().expect("energy accumulated");
    assert!(
        proportionality <= 1.5,
        "measured energy must stay within 1.5x the oracle: {proportionality:.3}"
    );
    let all_on_fraction = meter.server_seconds() / (N as f64 * elapsed);
    assert!(
        all_on_fraction < 0.95,
        "the cluster never meaningfully powered down: {all_on_fraction:.3}"
    );
    println!(
        "  energy             : {:.1} J measured, {:.1} J oracle, proportionality {proportionality:.2}, \
         machine-time {:.0}% of all-on",
        meter.joules(),
        meter.oracle_joules(),
        all_on_fraction * 100.0
    );

    // --- Gate 3: delay bound held ---------------------------------
    assert!(
        worst_p99 < bound,
        "worst windowed p99 {worst_p99:?} must stay under the bound {bound:?}"
    );
    println!("  delay              : worst windowed p99 {worst_p99:?} (bound {bound:?})");

    // --- Gate 5: gap-free decision + transition trace -------------
    let body = http_get(
        exposition.local_addr(),
        "/trace.jsonl",
        Duration::from_millis(500),
        Duration::from_secs(2),
    )
    .unwrap();
    let lines: Vec<&str> = body.lines().filter(|l| !l.is_empty()).collect();
    assert!(!lines.is_empty(), "the run must have produced trace events");
    let mut events = Vec::with_capacity(lines.len());
    let mut prev_seq: Option<u64> = None;
    for line in &lines {
        let event = json::parse(line).expect("every trace line parses alone");
        let seq = event.get("seq").unwrap().as_u64().unwrap();
        if let Some(prev) = prev_seq {
            assert_eq!(seq, prev + 1, "zero sequence gaps in the replay");
        }
        prev_seq = Some(seq);
        events.push(event);
    }
    let kind = |e: &json::Json| e.get("kind").unwrap().as_str().unwrap().to_string();
    let decisions: Vec<usize> = events
        .iter()
        .enumerate()
        .filter(|&(_, e)| kind(e) == "controller_decision")
        .map(|(i, _)| i)
        .collect();
    assert!(
        decisions.len() >= 2,
        "a whole day must actuate at least two decisions"
    );
    for &i in &decisions {
        let begin = events[i + 1..]
            .iter()
            .find(|&e| kind(e) == "transition_begin")
            .expect("every decision is followed by its transition");
        assert_eq!(
            (events[i].get("from"), events[i].get("to")),
            (begin.get("from"), begin.get("to")),
            "decision must match the transition it actuated"
        );
    }
    println!(
        "  trace              : {} events, {} controller decisions, contiguous seqs",
        events.len(),
        decisions.len()
    );

    println!("power_loop gate passed");
    drop(exposition);
    drop(endpoints);
    for s in servers {
        s.stop();
    }
}
