//! Fig. 7: counting-Bloom-filter false-positive rate vs filter size,
//! one curve per cache fill level.
//!
//! The paper fills the digest from the real trace's cached keys and
//! sweeps the filter memory; at 512 KB the rate is negligible, which
//! is the size used in the rest of the evaluation. We sweep memory
//! from 32 KB to 1 MB for several key counts (cache fill levels),
//! printing measured rates next to the Eq. 4 prediction.
//!
//! Regenerate with: `cargo run --release -p proteus-bench --bin fig7_false_positive`

use proteus_bloom::{config, BloomConfig, CountingBloomFilter};

const HASHES: u32 = 4; // "we choose to use only 4 non-encryption hash functions"
const COUNTER_BITS: u32 = 4;

fn main() {
    let fills: [u64; 5] = [20_000, 50_000, 100_000, 200_000, 400_000];
    let sizes_kb: [u64; 6] = [32, 64, 128, 256, 512, 1024];
    println!(
        "Fig. 7 — measured false-positive rate (Eq. 4 prediction in \
         parentheses); h = {HASHES}, b = {COUNTER_BITS}"
    );
    print!("{:>10}", "size");
    for &kappa in &fills {
        print!(" {:>22}", format!("κ = {kappa}"));
    }
    println!();
    for &kb in &sizes_kb {
        let l = (kb * 1024 * 8 / u64::from(COUNTER_BITS)) as usize;
        print!("{:>8}KB", kb);
        for &kappa in &fills {
            let cfg = BloomConfig::new(l, COUNTER_BITS, HASHES);
            let mut filter = CountingBloomFilter::new(cfg);
            for i in 0..kappa {
                filter.insert(&i.to_le_bytes());
            }
            let probes = 100_000u64;
            let fps = (kappa..kappa + probes)
                .filter(|i| filter.contains(&i.to_le_bytes()))
                .count();
            let measured = fps as f64 / probes as f64;
            let predicted = config::false_positive_rate(l, HASHES, kappa);
            print!(" {:>11.5} ({:>7.5})", measured, predicted);
        }
        println!();
    }
    println!(
        "\npaper anchor: with 512 KB the filter \"achieves negligible false \
         positive\" at its cache fill — the 512 KB row should be ≈0 for \
         fills up to ~10⁵ keys and the curves should fall steeply with size."
    );
}
