//! Zero-copy hot path: allocations and time per operation, before vs
//! after.
//!
//! Three head-to-head comparisons, each pitting the zero-copy path
//! against the copying path it replaced:
//!
//! 1. **Warmed gets** — `ShardedEngine::get` handing out the shared
//!    value buffer (a refcount bump) vs cloning the bytes per hit (the
//!    old `Option<Vec<u8>>` behavior).
//! 2. **Wire parsing** — `read_raw_command` borrowing keys from one
//!    reused per-connection buffer pool vs `read_command` allocating
//!    owned keys per command.
//! 3. **Ring lookup** — the flat successor index (`server_for`) vs the
//!    binary search it replaced (`server_for_bsearch`); both are
//!    allocation-free, so this one is time-only.
//!
//! The binary registers a counting global allocator, so the
//! allocations/op columns are exact, deterministic counts — not
//! sampled estimates.
//!
//! Run with: `cargo run --release --bin zero_copy`
//!
//! `--smoke` runs a shortened sweep and exits non-zero unless the
//! zero-copy paths allocate at most half as often as the copying
//! paths and the warmed-get path is measurably faster (CI guard).

use std::time::{Duration, Instant};

use proteus_bench::alloc_track::{is_counting, measure, AllocSnapshot, CountingAlloc};
use proteus_bench::write_csv;
use proteus_cache::{CacheConfig, ShardedEngine};
use proteus_net::{read_command, read_raw_command, RawCommand, WireBuf};
use proteus_ring::{hash::splitmix64, PlacementStrategy, ProteusPlacement};
use proteus_sim::SimTime;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const VALUE_LEN: usize = 4096;

struct Measured {
    label: &'static str,
    ops: u64,
    elapsed: Duration,
    allocs: AllocSnapshot,
}

impl Measured {
    fn allocs_per_op(&self) -> f64 {
        self.allocs.allocations as f64 / self.ops as f64
    }

    fn bytes_per_op(&self) -> f64 {
        self.allocs.bytes as f64 / self.ops as f64
    }

    fn ns_per_op(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.ops as f64
    }
}

fn run(label: &'static str, ops: u64, f: impl FnOnce()) -> Measured {
    let started = Instant::now();
    let ((), allocs) = measure(f);
    Measured {
        label,
        ops,
        elapsed: started.elapsed(),
        allocs,
    }
}

fn print_pair(title: &str, copying: &Measured, zero_copy: &Measured) {
    println!("\n{title}");
    println!("path                 | allocs/op | bytes/op | ns/op");
    println!("---------------------+-----------+----------+---------");
    for m in [copying, zero_copy] {
        println!(
            "{:<20} | {:>9.3} | {:>8.0} | {:>8.1}",
            m.label,
            m.allocs_per_op(),
            m.bytes_per_op(),
            m.ns_per_op()
        );
    }
    println!(
        "reduction: {:.1}x fewer allocations, {:.2}x faster",
        ratio(copying.allocs_per_op(), zero_copy.allocs_per_op()),
        ratio(copying.ns_per_op(), zero_copy.ns_per_op()),
    );
}

/// `a / b` with an infinity-free rendering when `b` is zero.
fn ratio(a: f64, b: f64) -> f64 {
    if b <= 0.0 {
        if a <= 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        a / b
    }
}

fn warmed_gets(ops: u64) -> (Measured, Measured) {
    let engine = ShardedEngine::new(CacheConfig::with_capacity(256 << 20));
    let key_space = 4096u64;
    for i in 0..key_space {
        engine.put(&i.to_le_bytes(), vec![7u8; VALUE_LEN], SimTime::ZERO);
    }
    let copying = run("get + copy (old)", ops, || {
        for i in 0..ops {
            let key = (splitmix64(i) % key_space).to_le_bytes();
            let hit = engine.get(&key, SimTime::ZERO).map(|v| v.to_vec());
            std::hint::black_box(&hit);
        }
    });
    let zero_copy = run("get shared (new)", ops, || {
        for i in 0..ops {
            let key = (splitmix64(i) % key_space).to_le_bytes();
            let hit = engine.get(&key, SimTime::ZERO);
            std::hint::black_box(&hit);
        }
    });
    (copying, zero_copy)
}

/// One pipelined request stream: interleaved multi-gets, sets, and
/// single gets, like a busy connection's input buffer.
fn request_stream(commands: u64) -> Vec<u8> {
    let mut stream = Vec::new();
    for i in 0..commands {
        match i % 3 {
            0 => stream.extend_from_slice(
                format!("get page:{} page:{} page:{}\r\n", i, i + 1, i + 2).as_bytes(),
            ),
            1 => {
                stream.extend_from_slice(format!("set page:{i} 0 0 64\r\n").as_bytes());
                stream.extend_from_slice(&[b'x'; 64]);
                stream.extend_from_slice(b"\r\n");
            }
            _ => stream.extend_from_slice(format!("get page:{i}\r\n").as_bytes()),
        }
    }
    stream
}

/// Drains `stream` with the borrowing parser; returns commands parsed.
fn drain_raw(stream: &[u8], buf: &mut WireBuf) -> u64 {
    let mut input = stream;
    let mut parsed = 0u64;
    while let Ok(cmd) = read_raw_command(&mut input, buf) {
        if matches!(cmd, RawCommand::Quit) {
            break;
        }
        std::hint::black_box(&cmd);
        parsed += 1;
    }
    parsed
}

fn wire_parsing(commands: u64) -> (Measured, Measured) {
    let stream = request_stream(commands);
    let copying = run("owned parse (old)", commands, || {
        let mut input = &stream[..];
        let mut parsed = 0u64;
        while let Ok(cmd) = read_command(&mut input) {
            std::hint::black_box(&cmd);
            parsed += 1;
        }
        assert_eq!(parsed, commands);
    });
    // Warm the pool outside the measurement: the paper-relevant state
    // is a connection that has served at least a few commands.
    let mut buf = WireBuf::new();
    assert_eq!(drain_raw(&stream, &mut buf), commands);
    let zero_copy = run("borrowed parse (new)", commands, || {
        assert_eq!(drain_raw(&stream, &mut buf), commands);
    });
    (copying, zero_copy)
}

fn ring_lookup(ops: u64) -> (Measured, Measured) {
    let p = ProteusPlacement::generate(32);
    let copying = run("binary search (old)", ops, || {
        for i in 0..ops {
            let key = splitmix64(i);
            let n = 1 + (i % 32) as usize;
            std::hint::black_box(p.server_for_bsearch(key, n));
        }
    });
    let zero_copy = run("flat index (new)", ops, || {
        for i in 0..ops {
            let key = splitmix64(i);
            let n = 1 + (i % 32) as usize;
            std::hint::black_box(p.server_for(key, n));
        }
    });
    (copying, zero_copy)
}

fn main() {
    assert!(
        is_counting(),
        "counting allocator not registered; allocs/op would be vacuously zero"
    );
    let smoke = std::env::args().any(|a| a == "--smoke");
    let ops: u64 = if smoke { 50_000 } else { 500_000 };
    println!(
        "zero-copy hot path: allocations and time per op ({ops} ops{})",
        if smoke { ", smoke mode" } else { "" }
    );

    let (get_copy, get_shared) = warmed_gets(ops);
    print_pair(
        &format!("warmed gets, {VALUE_LEN}-byte values"),
        &get_copy,
        &get_shared,
    );

    let (parse_owned, parse_raw) = wire_parsing(ops / 5);
    print_pair("wire parsing, pipelined stream", &parse_owned, &parse_raw);

    let (ring_bsearch, ring_flat) = ring_lookup(ops * 4);
    print_pair("ring successor lookup, N=32", &ring_bsearch, &ring_flat);

    let rows = [
        ("warmed_get", &get_copy, &get_shared),
        ("wire_parse", &parse_owned, &parse_raw),
        ("ring_lookup", &ring_bsearch, &ring_flat),
    ]
    .into_iter()
    .map(|(name, old, new)| {
        vec![
            name.to_string(),
            format!("{:.4}", old.allocs_per_op()),
            format!("{:.4}", new.allocs_per_op()),
            format!("{:.1}", old.ns_per_op()),
            format!("{:.1}", new.ns_per_op()),
        ]
    });
    if let Ok(path) = write_csv(
        "zero_copy",
        &[
            "section",
            "old_allocs_per_op",
            "new_allocs_per_op",
            "old_ns_per_op",
            "new_ns_per_op",
        ],
        rows,
    ) {
        println!("\ncsv: {}", path.display());
    }

    if smoke {
        // Allocation counts are deterministic — gate them hard. The
        // ISSUE acceptance bar is a ≥2x reduction; the measured paths
        // are in fact ~∞ (zero allocations warmed) vs ≥1 per op.
        let get_reduction = ratio(get_copy.allocs_per_op(), get_shared.allocs_per_op());
        let parse_reduction = ratio(parse_owned.allocs_per_op(), parse_raw.allocs_per_op());
        println!(
            "\nsmoke: alloc reduction — gets {get_reduction:.1}x, parse {parse_reduction:.1}x"
        );
        assert!(
            get_reduction >= 2.0,
            "warmed-get alloc reduction {get_reduction:.2}x below the 2x bar"
        );
        assert!(
            parse_reduction >= 2.0,
            "parse alloc reduction {parse_reduction:.2}x below the 2x bar"
        );
        assert!(
            get_shared.allocs_per_op() < 0.01,
            "warmed shared get should not allocate, measured {:.4}/op",
            get_shared.allocs_per_op()
        );
        // Wall-clock is noisier than counters; the copy path pays a
        // 4 KiB allocation + memcpy per hit, so even a loaded machine
        // shows the gap. Gate leniently.
        let speedup = ratio(get_copy.ns_per_op(), get_shared.ns_per_op());
        println!("smoke: warmed-get speedup {speedup:.2}x");
        assert!(
            speedup >= 1.05,
            "warmed-get path shows no throughput gain ({speedup:.2}x)"
        );
        println!("smoke check passed");
    }
}
