//! Fig. 10: whole-cluster power draw over time for all four scenarios
//! (PDU samples).
//!
//! Regenerate with: `cargo run --release -p proteus-bench --bin fig10_power`

use proteus_bench::{sparkline, write_csv, Evaluation};

fn main() {
    let eval = Evaluation::standard();
    let reports = eval.run_all();

    println!(
        "Fig. 10 — cluster power over time (W), sampled every {}",
        eval.config.power_sample
    );
    for (sc, report) in &reports {
        let total: Vec<f64> = report.power_samples.iter().map(|s| s.1).collect();
        let cache: Vec<f64> = report.power_samples.iter().map(|s| s.2).collect();
        let lo = total.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = total.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mean = total.iter().sum::<f64>() / total.len() as f64;
        // Downsample to 96 columns.
        let cols: Vec<f64> = total
            .chunks(total.len().div_ceil(96))
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect();
        println!(
            "\n{:<16} mean {:.0} W, range {:.0}-{:.0} W",
            sc.name(),
            mean,
            lo,
            hi
        );
        println!("  total  [{}]", sparkline(&cols, false));
        let cache_cols: Vec<f64> = cache
            .chunks(cache.len().div_ceil(96))
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect();
        println!("  cache  [{}]", sparkline(&cache_cols, false));
    }

    println!("\nper-slot mean cluster power (W):");
    print!("{:>4} {:>6}", "slot", "n(t)");
    for (sc, _) in &reports {
        print!(" {:>15}", sc.name());
    }
    println!();
    let slot_nanos = eval.config.slot.as_nanos();
    for slot in 0..eval.config.slots {
        print!("{:>4} {:>6}", slot, eval.plan.active_at(slot));
        for (_, report) in &reports {
            let in_slot: Vec<f64> = report
                .power_samples
                .iter()
                .filter(|(t, _, _)| (t.as_nanos() / slot_nanos) as usize == slot)
                .map(|s| s.1)
                .collect();
            let mean = in_slot.iter().sum::<f64>() / in_slot.len().max(1) as f64;
            print!(" {:>15.0}", mean);
        }
        println!();
    }
    // Plot-ready CSV: time, then (total, cache) watts per scenario.
    let mut header = vec!["time_s".to_string()];
    for (sc, _) in &reports {
        header.push(format!("{}_total_w", sc.name()));
        header.push(format!("{}_cache_w", sc.name()));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let samples = reports[0].1.power_samples.len();
    let rows = (0..samples).map(|i| {
        let mut row = vec![reports[0].1.power_samples[i].0.as_secs_f64()];
        for (_, r) in &reports {
            row.push(r.power_samples[i].1);
            row.push(r.power_samples[i].2);
        }
        row
    });
    match write_csv("fig10_power_w", &header_refs, rows) {
        Ok(path) => println!("\nCSV written to {}", path.display()),
        Err(e) => eprintln!("\nCSV export failed: {e}"),
    }

    println!(
        "\npaper anchor: Static stays near its ceiling all day (decreasing \
         only slightly with load); the three dynamic scenarios dip together \
         during the valley and converge to Static at the peak."
    );
}
