//! Fault-injection experiment: crash a cache server mid-day and watch
//! each scenario recover.
//!
//! Section III-A argues that a fixed provisioning order is "not any
//! weaker" under failures: "if some server crashes, we have already
//! lost the data in cache, and both schemes need some fault tolerant
//! solutions". This experiment wipes server s1's cache at mid-day (a
//! crash with fast restart) in every scenario and reports the response
//! -time bump and its decay — the recovery transient is a property of
//! cache refill, not of the placement scheme, exactly as the paper
//! argues.
//!
//! Regenerate with: `cargo run --release -p proteus-bench --bin failure_recovery`

use proteus_bench::{fmt_opt_ms, Evaluation, SIM_SEED};
use proteus_core::{ClusterSim, Scenario};
use proteus_sim::SimTime;

fn main() {
    let eval = Evaluation::short();
    let crash_at = SimTime::ZERO + eval.config.duration() / 2;
    let crash_slot = (crash_at.as_nanos() / eval.config.slot.as_nanos()) as usize;
    println!("wiping s1's cache at t = {crash_at} (slot {crash_slot}) in every scenario");
    println!(
        "\n{:<16} {:>16} {:>16} {:>16} {:>16}",
        "scenario", "pre-crash p99.9", "crash-slot worst", "+1 slot", "+2 slots"
    );
    let per_slot = eval.config.response_buckets / eval.config.slots;
    for scenario in Scenario::all() {
        eprintln!("  running {} ...", scenario.name());
        let mut config = eval.config.clone();
        config.cache_wipe_failures = vec![(crash_at, 0)];
        let report = ClusterSim::new(config, scenario, &eval.trace, &eval.plan, SIM_SEED).run();
        let slot_worst = |slot: usize| {
            report.latency_buckets
                [slot * per_slot..((slot + 1) * per_slot).min(report.latency_buckets.len())]
                .iter()
                .filter_map(|h| h.quantile(0.999))
                .max()
        };
        println!(
            "{:<16} {:>16} {:>16} {:>16} {:>16}",
            scenario.name(),
            fmt_opt_ms(slot_worst(crash_slot.saturating_sub(1))),
            fmt_opt_ms(slot_worst(crash_slot)),
            fmt_opt_ms(slot_worst(crash_slot + 1)),
            fmt_opt_ms(slot_worst(crash_slot + 2)),
        );
    }
    println!(
        "\nexpected: every scenario takes a refill bump at the crash slot and \
         decays within a slot or two — losing a cache's contents is \
         unavoidable for any placement (Section III-A). The bump scales \
         with the crashed server's keyspace share, so the balanced schemes \
         (Proteus, modulo) take smaller hits than imbalanced consistent \
         hashing; Naive's own transition storms dwarf the crash entirely. \
         Pair with `examples/replication.rs` for the Section III-E \
         replication remedy."
    );
}
