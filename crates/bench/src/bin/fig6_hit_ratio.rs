//! Fig. 6: cache hit ratio vs per-server cache size.
//!
//! The paper replays the Wikipedia trace against memcached at several
//! memory sizes and reports ≈80% hit ratio at 1 GB per server with
//! 4 KB pages. We replay the standard Zipf trace against the LRU
//! engine across a size sweep; sizes are reported in paper-equivalent
//! GB (the simulated catalog is a scaled-down stand-in for the 2.56 M
//! cached pages, so the sweep is expressed as a fraction of the
//! catalog's footprint and labelled with the equivalent per-server GB
//! for a 2.56 M-page working set).
//!
//! Regenerate with: `cargo run --release -p proteus-bench --bin fig6_hit_ratio`

use proteus_bench::{sparkline, Evaluation};
use proteus_cache::{CacheConfig, CacheEngine};
use proteus_core::page_key;
use proteus_workload::lru_model;

fn main() {
    let eval = Evaluation::with_rate(1500.0);
    let object_size = eval.config.object_size as u64;
    // Engine accounting: key (≤ 12 bytes for page keys) + value + 48.
    let per_object = object_size + 12 + 48;
    let catalog_bytes = eval.config.pages * per_object;
    println!(
        "trace: {} requests over {} distinct pages ({} MB footprint at 4 KB \
         objects)",
        eval.trace.len(),
        eval.config.pages,
        catalog_bytes >> 20
    );
    println!(
        "\n{:>12} {:>14} {:>12} {:>10} {:>10}",
        "cache size", "≈paper GB/srv", "objects", "hit ratio", "Che pred."
    );
    let fractions = [0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0];
    let mut ratios = Vec::new();
    for &fraction in &fractions {
        let capacity = (catalog_bytes as f64 * fraction) as u64;
        let mut cache = CacheEngine::new(CacheConfig::with_capacity(capacity));
        let mut hits = 0u64;
        for rec in eval.trace.records() {
            let key = page_key(rec.page);
            if cache.get(&key, rec.at).is_some() {
                hits += 1;
            } else {
                cache.put(&key, vec![0u8; object_size as usize], rec.at);
            }
        }
        let ratio = hits as f64 / eval.trace.len() as f64;
        ratios.push(ratio);
        // Paper-equivalent: 2.56M pages × 4 KB ≈ 10 GB working set over
        // 10 servers; a fraction f of the footprint ≈ f × 1.05 GB/server.
        let paper_gb = fraction * 2_560_000.0 * 4096.0 / 10.0 / 1e9;
        let objects = (capacity / per_object) as usize;
        let che = lru_model::zipf_hit_ratio(eval.config.pages, eval.config.zipf_exponent, objects);
        println!(
            "{:>10} MB {:>14.2} {:>12} {:>9.1}% {:>9.1}%",
            capacity >> 20,
            paper_gb,
            objects,
            ratio * 100.0,
            che * 100.0
        );
    }
    println!("\nhit ratio [{}]", sparkline(&ratios, false));
    println!(
        "\npaper anchor: ≈80% hit ratio at 1 GB/server; this sweep should \
         cross 80% near the corresponding fraction and saturate beyond it \
         (diminishing returns on the Zipf tail). The analytical column is \
         Che's approximation for the same Zipf catalog; the session \
         workload's temporal locality lifts measured ratios slightly above \
         the IRM prediction."
    );
}
