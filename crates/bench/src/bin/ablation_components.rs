//! Component ablation: which half of Proteus does what?
//!
//! Proteus = (a) Algorithm 1's deterministic placement + (b)
//! Algorithm 2's digest-guided smooth transitions. This 2×2 experiment
//! separates their contributions by crossing {Proteus placement,
//! random-vnode consistent hashing} × {digests on, digests off}:
//!
//! - placement governs **load balance** (Fig. 5's metric);
//! - digests govern **transition smoothness** (Fig. 9's metric);
//! - only the combination delivers both, which is the paper's design
//!   argument for building the two mechanisms together.
//!
//! Regenerate with: `cargo run --release -p proteus-bench --bin ablation_components`

use proteus_bench::{Evaluation, SIM_SEED};
use proteus_core::{ClusterReport, ClusterSim, Scenario, VnodeBudget};

fn mean_balance(report: &ClusterReport) -> f64 {
    let v: Vec<f64> = report
        .balance_ratio_per_slot()
        .into_iter()
        .flatten()
        .collect();
    v.iter().sum::<f64>() / v.len().max(1) as f64
}

fn main() {
    let eval = Evaluation::short();
    let cells = [
        ("proteus placement", "digests on", Scenario::Proteus),
        ("proteus placement", "digests off", Scenario::ProteusBlind),
        (
            "random vnodes",
            "digests on",
            Scenario::ConsistentSmart(VnodeBudget::Quadratic),
        ),
        (
            "random vnodes",
            "digests off",
            Scenario::Consistent(VnodeBudget::Quadratic),
        ),
    ];
    println!(
        "{:<20} {:<12} {:>10} {:>14} {:>14} {:>10}",
        "placement", "transitions", "balance", "typ p99.9", "worst p99.9", "migrated"
    );
    for (placement, digests, scenario) in cells {
        eprintln!("  running {} ...", scenario.name());
        let report = ClusterSim::new(
            eval.config.clone(),
            scenario,
            &eval.trace,
            &eval.plan,
            SIM_SEED,
        )
        .run();
        println!(
            "{:<20} {:<12} {:>10.3} {:>12.0}ms {:>12.0}ms {:>10}",
            placement,
            digests,
            mean_balance(&report),
            report
                .typical_bucket_quantile(0.999)
                .map_or(0.0, |d| d.as_millis_f64()),
            report
                .worst_bucket_quantile(0.999)
                .map_or(0.0, |d| d.as_millis_f64()),
            report.counters.migrated,
        );
    }
    println!(
        "\nexpected: the placement column controls the balance ratio \
         (~0.8 deterministic vs ~0.3 random); the digest column controls \
         the worst percentile (smooth vs transition spikes). Proteus is the \
         only cell that wins both — the paper's argument for designing the \
         two mechanisms as one actuator."
    );
}
