//! Eq. 3 (Section III-E): the probability that `r` replicas of a key
//! land on distinct servers when replication runs `r` hash rings over
//! one shared placement — predicted vs measured.
//!
//! Regenerate with: `cargo run --release -p proteus-bench --bin eq3_replication`

use proteus_ring::ReplicatedPlacement;

fn main() {
    println!("Eq. 3 — no-conflict probability Π (n-i)/n, predicted vs measured");
    println!(
        "{:>4} {:>6} {:>12} {:>12} {:>10}",
        "r", "n", "predicted", "measured", "trials"
    );
    for &r in &[2usize, 3] {
        for &n in &[5usize, 10, 20, 40] {
            let servers = n.min(proteus_ring::MAX_EXACT_SERVERS);
            let rp = ReplicatedPlacement::new(servers, r, 99);
            let trials = 50_000u64;
            let distinct = (0..trials)
                .filter(|k| rp.distinct_servers_for(&k.to_le_bytes(), n).len() == r)
                .count();
            println!(
                "{:>4} {:>6} {:>12.4} {:>12.4} {:>10}",
                r,
                n,
                ReplicatedPlacement::no_conflict_probability(r, n),
                distinct as f64 / trials as f64,
                trials
            );
        }
    }
    println!("\nlarge-n limit (closed form only):");
    for &n in &[100usize, 1000, 10_000] {
        println!(
            "  r=3, n={n}: {:.6}",
            ReplicatedPlacement::no_conflict_probability(3, n)
        );
    }
    println!(
        "\npaper anchor: \"As r is usually a small number (e.g., 2 or 3), and \
         n(t) is much larger (e.g., a few thousand), Pnc for each data piece \
         should be close to 1.\""
    );
}
