//! Fig. 5: load balancing under dynamics — the min/max per-server load
//! ratio per slot for five curves: Static, Naive, Proteus,
//! Consistent with O(log n) virtual nodes, and Consistent with n²/2
//! virtual nodes.
//!
//! Regenerate with: `cargo run --release -p proteus-bench --bin fig5_load_balance`

use proteus_bench::{fmt_opt_ratio, write_csv, Evaluation};
use proteus_core::{Scenario, VnodeBudget};

fn main() {
    let eval = Evaluation::standard();
    let scenarios = [
        Scenario::Static,
        Scenario::Naive,
        Scenario::Consistent(VnodeBudget::Logarithmic),
        Scenario::Consistent(VnodeBudget::Quadratic),
        Scenario::Proteus,
    ];
    let reports: Vec<_> = scenarios
        .iter()
        .map(|&sc| {
            eprintln!("  running scenario {} ...", sc.name());
            (sc, eval.run(sc))
        })
        .collect();

    println!("Fig. 5 — min/max request-count ratio over active servers, per slot");
    print!("{:>4} {:>6}", "slot", "n(t)");
    for (sc, _) in &reports {
        print!(" {:>15}", sc.name());
    }
    println!();
    for slot in 0..eval.config.slots {
        print!("{:>4} {:>6}", slot, eval.plan.active_at(slot));
        for (_, report) in &reports {
            print!(
                " {:>15}",
                fmt_opt_ratio(report.balance_ratio_per_slot()[slot])
            );
        }
        println!();
    }

    println!("\nmean balance ratio over the day:");
    for (sc, report) in &reports {
        let ratios: Vec<f64> = report
            .balance_ratio_per_slot()
            .into_iter()
            .flatten()
            .collect();
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        println!("  {:<16} {:.3}", sc.name(), mean);
    }
    let header: Vec<String> = ["slot".to_string(), "active".to_string()]
        .into_iter()
        .chain(reports.iter().map(|(sc, _)| sc.name().to_string()))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let rows = (0..eval.config.slots).map(|slot| {
        let mut row = vec![slot as f64, eval.plan.active_at(slot) as f64];
        for (_, report) in &reports {
            row.push(report.balance_ratio_per_slot()[slot].unwrap_or(f64::NAN));
        }
        row
    });
    match write_csv("fig5_balance", &header_refs, rows) {
        Ok(path) => println!("\nCSV written to {}", path.display()),
        Err(e) => eprintln!("\nCSV export failed: {e}"),
    }

    println!(
        "\nexpected shape (paper): Proteus ≈ Static ≈ Naive, both consistent-\n\
         hashing variants clearly worse, O(log n) worst."
    );
}
