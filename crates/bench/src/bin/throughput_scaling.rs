//! Throughput scaling of the cache engine under concurrent clients:
//! the old single-mutex engine vs the lock-striped sharded engine,
//! swept over 1/2/4/8 client threads, reporting ops/sec and sampled
//! p50/p99/p999 latency from a shared lock-free histogram — plus the
//! same sweep with a concurrent digest-snapshot loop (the paper's
//! `get SET_BLOOM_FILTER` under load).
//!
//! Run with: `cargo run --release --bin throughput_scaling`
//!
//! The binary registers the counting global allocator, so each sweep
//! row also reports exact allocations per operation — the zero-copy
//! hot path should hold this near zero for the read-heavy mix.
//!
//! `--smoke` runs a shortened sweep and exits non-zero unless the
//! sharded engine at the highest thread count at least matches the
//! single-mutex baseline (CI guard against concurrency regressions).

use std::sync::Arc;

use proteus_bench::alloc_track::{measure, CountingAlloc};
use proteus_bench::concurrency::{
    prepopulate, run_mixed, ConcurrentCache, MixedWorkload, RunReport, ShardedCache,
    SingleMutexCache,
};
use proteus_bench::write_csv;
use proteus_cache::CacheConfig;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn config() -> CacheConfig {
    CacheConfig::with_capacity(256 << 20)
}

/// One sweep row: thread count, timing report, and exact allocations
/// per operation across the whole run (worker threads included).
struct Row {
    threads: usize,
    report: RunReport,
    allocs_per_op: f64,
}

fn sweep<C: ConcurrentCache>(cache: &Arc<C>, ops_per_thread: u64, snapshot_loop: bool) -> Vec<Row> {
    THREADS
        .iter()
        .map(|&threads| {
            let mut workload = MixedWorkload::read_heavy(threads, ops_per_thread);
            if snapshot_loop {
                workload = workload.with_snapshot_loop();
            }
            let (report, allocs) = measure(|| run_mixed(cache, workload));
            let total_ops = (threads as u64 * ops_per_thread).max(1);
            Row {
                threads,
                report,
                allocs_per_op: allocs.allocations as f64 / total_ops as f64,
            }
        })
        .collect()
}

fn print_section(title: &str, single: &[Row], sharded: &[Row]) {
    let us = |d: std::time::Duration| d.as_secs_f64() * 1e6;
    println!("\n{title}");
    println!(
        "threads | single-mutex ops/s    p50    p99   p999 alloc/op | \
         sharded ops/s         p50    p99   p999 alloc/op | speedup"
    );
    println!(
        "--------+--------------------------------------------------+\
         --------------------------------------------------+--------"
    );
    for (a, b) in single.iter().zip(sharded) {
        println!(
            "{:>7} | {:>12.0} {:>8.1} {:>6.1} {:>6.1} {:>8.3} | \
             {:>12.0} {:>8.1} {:>6.1} {:>6.1} {:>8.3} | {:>6.2}x",
            a.threads,
            a.report.ops_per_sec(),
            us(a.report.p50),
            us(a.report.p99),
            us(a.report.p999),
            a.allocs_per_op,
            b.report.ops_per_sec(),
            us(b.report.p50),
            us(b.report.p99),
            us(b.report.p999),
            b.allocs_per_op,
            b.report.ops_per_sec() / a.report.ops_per_sec(),
        );
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let ops_per_thread: u64 = if smoke { 20_000 } else { 200_000 };
    println!(
        "engine throughput scaling ({} ops/thread{})",
        ops_per_thread,
        if smoke { ", smoke mode" } else { "" }
    );

    let probe = MixedWorkload::read_heavy(1, 0);
    let single = Arc::new(SingleMutexCache::new(config()));
    let sharded = Arc::new(ShardedCache::new(config()));
    prepopulate(&*single, probe.key_space, probe.value_len);
    prepopulate(&*sharded, probe.key_space, probe.value_len);

    let single_plain = sweep(&single, ops_per_thread, false);
    let sharded_plain = sweep(&sharded, ops_per_thread, false);
    print_section("mixed 90/10 read/write", &single_plain, &sharded_plain);

    let single_snap = sweep(&single, ops_per_thread, true);
    let sharded_snap = sweep(&sharded, ops_per_thread, true);
    print_section(
        "same, with a concurrent digest-snapshot loop",
        &single_snap,
        &sharded_snap,
    );
    let snap_counts: Vec<u64> = sharded_snap.iter().map(|r| r.report.snapshots).collect();
    println!("\nsnapshots completed alongside the sharded runs: {snap_counts:?}");

    let rows = single_plain
        .iter()
        .zip(&sharded_plain)
        .zip(single_snap.iter().zip(&sharded_snap))
        .map(|((a, b), (c, d))| {
            vec![
                a.threads as f64,
                a.report.ops_per_sec(),
                a.report.p50.as_secs_f64() * 1e6,
                a.report.p99.as_secs_f64() * 1e6,
                a.report.p999.as_secs_f64() * 1e6,
                a.allocs_per_op,
                b.report.ops_per_sec(),
                b.report.p50.as_secs_f64() * 1e6,
                b.report.p99.as_secs_f64() * 1e6,
                b.report.p999.as_secs_f64() * 1e6,
                b.allocs_per_op,
                c.report.ops_per_sec(),
                d.report.ops_per_sec(),
            ]
        });
    if let Ok(path) = write_csv(
        "throughput_scaling",
        &[
            "threads",
            "single_ops_per_sec",
            "single_p50_us",
            "single_p99_us",
            "single_p999_us",
            "single_allocs_per_op",
            "sharded_ops_per_sec",
            "sharded_p50_us",
            "sharded_p99_us",
            "sharded_p999_us",
            "sharded_allocs_per_op",
            "single_snap_ops_per_sec",
            "sharded_snap_ops_per_sec",
        ],
        rows,
    ) {
        println!("csv: {}", path.display());
    }

    if smoke {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);

        // The snapshot loop must make progress concurrently with the
        // data path — this is the structural invariant, valid on any
        // hardware.
        assert!(
            sharded_snap.iter().all(|r| r.report.snapshots > 0),
            "sharded snapshot loop starved"
        );

        // Under the snapshot loop the baseline holds the global mutex
        // while cloning the whole digest, stalling every get; the
        // sharded engine clones one shard at a time.
        let single_one = single_snap.first().expect("sweep ran");
        let sharded_one = sharded_snap.first().expect("sweep ran");
        let snap_ratio = sharded_one.report.ops_per_sec() / single_one.report.ops_per_sec();
        println!("\nsmoke: gets under snapshot loop, 1 thread: sharded/single = {snap_ratio:.2}x");

        let base = single_plain.last().expect("sweep ran");
        let contender = sharded_plain.last().expect("sweep ran");
        let ratio = contender.report.ops_per_sec() / base.report.ops_per_sec();
        println!(
            "smoke: {} threads on {cores} core(s): sharded/single = {ratio:.2}x",
            base.threads
        );

        // The allocation counters are deterministic on any hardware:
        // a 90/10 read-heavy mix allocates roughly once per write
        // (the stored value) and nothing per warmed read, so the
        // sharded engine must stay well under one allocation per op.
        let worst = sharded_plain
            .iter()
            .map(|r| r.allocs_per_op)
            .fold(0.0f64, f64::max);
        println!("smoke: sharded allocs/op (worst row) = {worst:.3}");
        assert!(
            worst < 0.5,
            "read-heavy sharded sweep allocates {worst:.3}/op — zero-copy hot path regressed"
        );

        // Ratio gates need real parallelism: on a single-core runner
        // every thread timeslices one CPU, so both ratios degenerate
        // into scheduler noise and are reported but not enforced.
        if cores >= 2 {
            assert!(
                snap_ratio >= 0.9,
                "digest snapshots stall the sharded data path ({snap_ratio:.2}x)"
            );
            assert!(
                ratio >= 1.0,
                "sharded engine slower than the single-mutex baseline ({ratio:.2}x)"
            );
        } else {
            println!("smoke: single core — ratios reported, not enforced");
        }
        println!("smoke check passed");
    }
}
