//! Throughput scaling of the cache engine under concurrent clients:
//! the old single-mutex engine vs the lock-striped sharded engine,
//! swept over 1/2/4/8 client threads, reporting ops/sec and sampled
//! p99 latency — plus the same sweep with a concurrent digest-snapshot
//! loop (the paper's `get SET_BLOOM_FILTER` under load).
//!
//! Run with: `cargo run --release --bin throughput_scaling`
//!
//! `--smoke` runs a shortened sweep and exits non-zero unless the
//! sharded engine at the highest thread count at least matches the
//! single-mutex baseline (CI guard against concurrency regressions).

use std::sync::Arc;

use proteus_bench::concurrency::{
    prepopulate, run_mixed, ConcurrentCache, MixedWorkload, RunReport, ShardedCache,
    SingleMutexCache,
};
use proteus_bench::write_csv;
use proteus_cache::CacheConfig;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn config() -> CacheConfig {
    CacheConfig::with_capacity(256 << 20)
}

fn sweep<C: ConcurrentCache>(
    cache: &Arc<C>,
    ops_per_thread: u64,
    snapshot_loop: bool,
) -> Vec<(usize, RunReport)> {
    THREADS
        .iter()
        .map(|&threads| {
            let mut workload = MixedWorkload::read_heavy(threads, ops_per_thread);
            if snapshot_loop {
                workload = workload.with_snapshot_loop();
            }
            (threads, run_mixed(cache, workload))
        })
        .collect()
}

fn print_section(title: &str, single: &[(usize, RunReport)], sharded: &[(usize, RunReport)]) {
    println!("\n{title}");
    println!("threads | single-mutex ops/s   p99 | sharded ops/s        p99 | speedup");
    println!("--------+--------------------------+--------------------------+--------");
    for ((threads, a), (_, b)) in single.iter().zip(sharded) {
        println!(
            "{threads:>7} | {:>12.0} {:>9.1}us | {:>12.0} {:>9.1}us | {:>6.2}x",
            a.ops_per_sec(),
            a.p99.as_secs_f64() * 1e6,
            b.ops_per_sec(),
            b.p99.as_secs_f64() * 1e6,
            b.ops_per_sec() / a.ops_per_sec(),
        );
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let ops_per_thread: u64 = if smoke { 20_000 } else { 200_000 };
    println!(
        "engine throughput scaling ({} ops/thread{})",
        ops_per_thread,
        if smoke { ", smoke mode" } else { "" }
    );

    let probe = MixedWorkload::read_heavy(1, 0);
    let single = Arc::new(SingleMutexCache::new(config()));
    let sharded = Arc::new(ShardedCache::new(config()));
    prepopulate(&*single, probe.key_space, probe.value_len);
    prepopulate(&*sharded, probe.key_space, probe.value_len);

    let single_plain = sweep(&single, ops_per_thread, false);
    let sharded_plain = sweep(&sharded, ops_per_thread, false);
    print_section("mixed 90/10 read/write", &single_plain, &sharded_plain);

    let single_snap = sweep(&single, ops_per_thread, true);
    let sharded_snap = sweep(&sharded, ops_per_thread, true);
    print_section(
        "same, with a concurrent digest-snapshot loop",
        &single_snap,
        &sharded_snap,
    );
    let snap_counts: Vec<u64> = sharded_snap.iter().map(|(_, r)| r.snapshots).collect();
    println!("\nsnapshots completed alongside the sharded runs: {snap_counts:?}");

    let rows = single_plain
        .iter()
        .zip(&sharded_plain)
        .zip(single_snap.iter().zip(&sharded_snap))
        .map(|(((threads, a), (_, b)), ((_, c), (_, d)))| {
            vec![
                *threads as f64,
                a.ops_per_sec(),
                a.p99.as_secs_f64() * 1e6,
                b.ops_per_sec(),
                b.p99.as_secs_f64() * 1e6,
                c.ops_per_sec(),
                d.ops_per_sec(),
            ]
        });
    if let Ok(path) = write_csv(
        "throughput_scaling",
        &[
            "threads",
            "single_ops_per_sec",
            "single_p99_us",
            "sharded_ops_per_sec",
            "sharded_p99_us",
            "single_snap_ops_per_sec",
            "sharded_snap_ops_per_sec",
        ],
        rows,
    ) {
        println!("csv: {}", path.display());
    }

    if smoke {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);

        // The snapshot loop must make progress concurrently with the
        // data path — this is the structural invariant, valid on any
        // hardware.
        assert!(
            sharded_snap.iter().all(|(_, r)| r.snapshots > 0),
            "sharded snapshot loop starved"
        );

        // Under the snapshot loop the baseline holds the global mutex
        // while cloning the whole digest, stalling every get; the
        // sharded engine clones one shard at a time.
        let (_, single_one) = single_snap.first().expect("sweep ran");
        let (_, sharded_one) = sharded_snap.first().expect("sweep ran");
        let snap_ratio = sharded_one.ops_per_sec() / single_one.ops_per_sec();
        println!("\nsmoke: gets under snapshot loop, 1 thread: sharded/single = {snap_ratio:.2}x");

        let (threads, base) = single_plain.last().expect("sweep ran");
        let (_, contender) = sharded_plain.last().expect("sweep ran");
        let ratio = contender.ops_per_sec() / base.ops_per_sec();
        println!("smoke: {threads} threads on {cores} core(s): sharded/single = {ratio:.2}x");

        // Ratio gates need real parallelism: on a single-core runner
        // every thread timeslices one CPU, so both ratios degenerate
        // into scheduler noise and are reported but not enforced.
        if cores >= 2 {
            assert!(
                snap_ratio >= 0.9,
                "digest snapshots stall the sharded data path ({snap_ratio:.2}x)"
            );
            assert!(
                ratio >= 1.0,
                "sharded engine slower than the single-mutex baseline ({ratio:.2}x)"
            );
        } else {
            println!("smoke: single core — ratios reported, not enforced");
        }
        println!("smoke check passed");
    }
}
