//! Connection scaling of the TCP data plane: the thread-per-connection
//! engine vs the epoll reactor vs the io_uring plane, swept over a
//! growing population of *idle* connections while a fixed pool of
//! active clients runs a verified 90/10 get/set mix.
//!
//! Two columns matter. `threads`: the threaded engine spends one OS
//! thread per attached socket, so 512 parked memcached clients cost
//! 512 stacks and 512 schedulable entities before a single byte of
//! work arrives; the event-driven planes multiplex every connection
//! onto a fixed set of loops. `sys/op`: data-plane syscalls per active
//! operation (from the server's own `plane_syscalls` counter) — the
//! threaded engine pays a read and a write per op, the reactor adds
//! epoll traffic, and io_uring batches many receives and sends behind
//! a single `io_uring_enter`, so its quotient drops below both.
//!
//! Run with: `cargo run --release -p proteus-bench --bin connection_scaling`
//!
//! `--smoke` is the CI gate: the reactor and io_uring planes must each
//! carry >= 512 concurrent connections on <= 8 data-plane threads with
//! every active operation verified and the parked sockets still
//! answering afterwards, and io_uring must spend strictly fewer
//! syscalls per op than the epoll reactor. On kernels without io_uring
//! the uring rows are skipped with an explicit note.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use proteus_bench::write_csv;
use proteus_cache::CacheConfig;
use proteus_net::{uring_supported, CacheServer, EngineKind, ServerConfig};
use proteus_obs::LatencyHistogram;

const ACTIVE_WORKERS: usize = 8;
const KEYS_PER_WORKER: u64 = 64;
const VALUE_LEN: usize = 32;
/// Ceiling asserted by the smoke gate: event loops plus the acceptor.
const SMOKE_THREAD_BUDGET: usize = 8;
const SMOKE_IDLE_CONNS: usize = 512;

/// OS threads currently in this process (server and bench share it),
/// or 0 where `/proc` is unavailable.
fn os_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find_map(|line| line.strip_prefix("Threads:"))
                .and_then(|v| v.trim().parse().ok())
        })
        .unwrap_or(0)
}

fn protocol_error(what: &str, got: &str) -> std::io::Error {
    std::io::Error::other(format!("expected {what}, got {got:?}"))
}

/// One `version` round trip — proves the server has accepted and is
/// servicing this socket.
fn touch(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.write_all(b"version\r\n")?;
    let mut buf = [0u8; 256];
    let mut n = 0;
    while !buf[..n].contains(&b'\n') {
        let r = match stream.read(&mut buf[n..]) {
            Ok(r) => r,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if r == 0 {
            return Err(protocol_error("version line", "EOF"));
        }
        n += r;
    }
    if buf.starts_with(b"VERSION") {
        Ok(())
    } else {
        Err(protocol_error(
            "VERSION",
            &String::from_utf8_lossy(&buf[..n]),
        ))
    }
}

/// Opens `n` connections, round-trips each once so the server has
/// genuinely registered it, then leaves them parked.
fn open_idle(addr: SocketAddr, n: usize) -> std::io::Result<Vec<TcpStream>> {
    (0..n)
        .map(|_| {
            let mut stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(Duration::from_secs(10)))?;
            touch(&mut stream)?;
            Ok(stream)
        })
        .collect()
}

fn read_line(reader: &mut BufReader<TcpStream>) -> std::io::Result<String> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(protocol_error("a reply line", "EOF"));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

fn expect_line(reader: &mut BufReader<TcpStream>, want: &str) -> std::io::Result<()> {
    let line = read_line(reader)?;
    if line == want {
        Ok(())
    } else {
        Err(protocol_error(want, &line))
    }
}

fn set(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    key: &str,
    value: &[u8],
) -> std::io::Result<()> {
    write!(stream, "set {key} 0 0 {}\r\n", value.len())?;
    stream.write_all(value)?;
    stream.write_all(b"\r\n")?;
    expect_line(reader, "STORED")
}

fn get_verified(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    key: &str,
    want: &[u8],
) -> std::io::Result<()> {
    write!(stream, "get {key}\r\n")?;
    let header = read_line(reader)?;
    if !header.starts_with("VALUE ") {
        return Err(protocol_error("VALUE header", &header));
    }
    let data = read_line(reader)?;
    if data.as_bytes() != want {
        return Err(protocol_error("the stored value", &data));
    }
    expect_line(reader, "END")
}

/// One active client: a private key set, prepopulated, then `ops`
/// verified operations (90% gets checked byte-for-byte, 10% sets),
/// each recorded into the shared histogram.
fn worker(
    addr: SocketAddr,
    w: usize,
    ops: u64,
    start: &Barrier,
    hist: &LatencyHistogram,
) -> std::io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let value = vec![b'a' + (w % 26) as u8; VALUE_LEN];
    for k in 0..KEYS_PER_WORKER {
        set(&mut stream, &mut reader, &format!("k{w}:{k}"), &value)?;
    }
    start.wait();
    for j in 0..ops {
        let key = format!("k{w}:{}", j % KEYS_PER_WORKER);
        let begin = Instant::now();
        if j % 10 == 0 {
            set(&mut stream, &mut reader, &key, &value)?;
        } else {
            get_verified(&mut stream, &mut reader, &key, &value)?;
        }
        hist.record(begin.elapsed());
    }
    Ok(())
}

/// Runs the active mix and returns the measured wall time (from the
/// synchronized start to the last worker finishing).
fn run_active(
    addr: SocketAddr,
    workers: usize,
    ops: u64,
    hist: &Arc<LatencyHistogram>,
) -> Duration {
    let start = Arc::new(Barrier::new(workers + 1));
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let hist = Arc::clone(hist);
            let start = Arc::clone(&start);
            std::thread::spawn(move || worker(addr, w, ops, &start, &hist))
        })
        .collect();
    start.wait();
    let begin = Instant::now();
    for handle in handles {
        handle
            .join()
            .expect("active worker panicked")
            .expect("active operation failed verification");
    }
    begin.elapsed()
}

struct Row {
    label: &'static str,
    resolved: EngineKind,
    idle: usize,
    /// OS threads the server added for the acceptor, its event loops
    /// or per-connection handlers, and the parked sockets.
    server_threads: usize,
    ops_per_sec: f64,
    /// Data-plane syscalls per active operation: the delta of the
    /// server's `plane_syscalls` counter across the active phase over
    /// the operations performed.
    syscalls_per_op: f64,
    p50: Duration,
    p99: Duration,
}

fn measure(engine: EngineKind, label: &'static str, idle: usize, ops: u64) -> Row {
    let before = os_threads();
    let server = CacheServer::spawn_with(
        "127.0.0.1:0",
        CacheConfig::with_capacity(64 << 20),
        ServerConfig { engine },
    )
    .expect("spawn cache server");
    let resolved = server.engine_kind();
    let mut parked = open_idle(server.addr(), idle).expect("open idle connections");
    let server_threads = os_threads().saturating_sub(before);

    let hist = Arc::new(LatencyHistogram::new());
    // Snapshot the syscall counter tight around the active phase so
    // the quotient excludes accept/park traffic. Each worker also
    // spends a prepopulation burst inside `run_active`; it is the same
    // per-plane workload shape as the measured mix, so it shifts every
    // plane's quotient equally.
    let sys_before = server.metrics().plane_syscalls();
    let elapsed = run_active(server.addr(), ACTIVE_WORKERS, ops, &hist);
    let sys_delta = server.metrics().plane_syscalls().saturating_sub(sys_before);

    // The parked sockets must have survived the active phase: sample
    // across the population and round-trip each.
    for stream in parked.iter_mut().step_by((idle / 8).max(1)) {
        touch(stream).expect("idle connection went dead under load");
    }
    drop(parked);
    server.stop();

    let pct = hist
        .snapshot()
        .percentiles()
        .expect("active phase recorded no samples");
    let total_ops = ACTIVE_WORKERS as u64 * (ops + KEYS_PER_WORKER);
    Row {
        label,
        resolved,
        idle,
        server_threads,
        ops_per_sec: (ACTIVE_WORKERS as u64 * ops) as f64 / elapsed.as_secs_f64(),
        syscalls_per_op: sys_delta as f64 / total_ops as f64,
        p50: pct.p50,
        p99: pct.p99,
    }
}

fn print_rows(rows: &[Row]) {
    let us = |d: Duration| d.as_secs_f64() * 1e6;
    println!("\nengine   | idle conns | threads |        ops/s | sys/op |   p50 us |   p99 us");
    println!("---------+------------+---------+--------------+--------+----------+---------");
    for r in rows {
        println!(
            "{:<8} | {:>10} | {:>7} | {:>12.0} | {:>6.2} | {:>8.1} | {:>8.1}",
            r.label,
            r.idle,
            r.server_threads,
            r.ops_per_sec,
            r.syscalls_per_op,
            us(r.p50),
            us(r.p99),
        );
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let ops: u64 = if smoke { 2_000 } else { 10_000 };
    let on_linux = cfg!(target_os = "linux");
    println!(
        "connection scaling ({ACTIVE_WORKERS} active workers, {ops} ops each{})",
        if smoke { ", smoke mode" } else { "" }
    );
    if os_threads() == 0 {
        println!("note: /proc/self/status unavailable — thread column reads 0");
    }

    // The event planes' loop counts are pinned so the thread column is
    // hardware-independent: 4 loops + 1 acceptor on any machine (the
    // uring plane's accept lives inside loop 0 — no extra thread).
    let reactor = EngineKind::Reactor { loops: 4 };
    let uring = EngineKind::Uring { loops: 4 };
    let have_uring = uring_supported();
    if !have_uring {
        println!("skipped: no io_uring (uring rows omitted)");
    }
    let rows: Vec<Row> = if smoke {
        let mut rows = vec![
            measure(EngineKind::Threaded, "threaded", 128, ops),
            measure(reactor, "reactor", SMOKE_IDLE_CONNS, ops),
        ];
        if have_uring {
            rows.push(measure(uring, "uring", SMOKE_IDLE_CONNS, ops));
        }
        rows
    } else {
        [0usize, 128, 512]
            .iter()
            .flat_map(|&idle| {
                let mut batch = vec![
                    measure(EngineKind::Threaded, "threaded", idle, ops),
                    measure(reactor, "reactor", idle, ops),
                ];
                if have_uring {
                    batch.push(measure(uring, "uring", idle, ops));
                }
                batch
            })
            .collect()
    };
    print_rows(&rows);

    let csv = rows.iter().map(|r| {
        vec![
            r.label.to_string(),
            r.idle.to_string(),
            r.server_threads.to_string(),
            format!("{:.0}", r.ops_per_sec),
            format!("{:.3}", r.syscalls_per_op),
            format!("{:.1}", r.p50.as_secs_f64() * 1e6),
            format!("{:.1}", r.p99.as_secs_f64() * 1e6),
        ]
    });
    if let Ok(path) = write_csv(
        "connection_scaling",
        &[
            "engine",
            "idle_conns",
            "server_threads",
            "ops_per_sec",
            "syscalls_per_op",
            "p50_us",
            "p99_us",
        ],
        csv,
    ) {
        println!("csv: {}", path.display());
    }

    if smoke {
        let threaded = &rows[0];
        let reactor_row = &rows[1];
        // Correctness already held: every worker verified every reply
        // byte-for-byte and every sampled parked socket answered.
        if on_linux {
            assert!(
                matches!(reactor_row.resolved, EngineKind::Reactor { .. }),
                "reactor request fell back to {:?} on Linux",
                reactor_row.resolved
            );
            assert!(
                reactor_row.server_threads > 0 && reactor_row.server_threads <= SMOKE_THREAD_BUDGET,
                "reactor used {} threads for {} connections (budget {SMOKE_THREAD_BUDGET})",
                reactor_row.server_threads,
                reactor_row.idle
            );
            assert!(
                threaded.server_threads > threaded.idle,
                "threaded engine should spend a thread per connection, \
                 saw {} for {} idle conns",
                threaded.server_threads,
                threaded.idle
            );
            println!(
                "\nsmoke: reactor served {} idle + {ACTIVE_WORKERS} active connections \
                 on {} threads (threaded engine: {} threads for {} idle)",
                reactor_row.idle,
                reactor_row.server_threads,
                threaded.server_threads,
                threaded.idle
            );
            if let Some(uring_row) = rows.get(2) {
                // Same capacity gate as the reactor, plus the batching
                // payoff: strictly fewer syscalls per op than epoll.
                assert!(
                    matches!(uring_row.resolved, EngineKind::Uring { .. }),
                    "uring request fell back to {:?} despite a positive probe",
                    uring_row.resolved
                );
                assert!(uring_row.idle >= SMOKE_IDLE_CONNS);
                assert!(
                    uring_row.server_threads > 0 && uring_row.server_threads <= SMOKE_THREAD_BUDGET,
                    "uring used {} threads for {} connections (budget {SMOKE_THREAD_BUDGET})",
                    uring_row.server_threads,
                    uring_row.idle
                );
                assert!(
                    uring_row.syscalls_per_op < reactor_row.syscalls_per_op,
                    "io_uring must batch below the epoll plane: \
                     {:.3} sys/op vs reactor {:.3} sys/op",
                    uring_row.syscalls_per_op,
                    reactor_row.syscalls_per_op
                );
                println!(
                    "smoke: uring served {} idle + {ACTIVE_WORKERS} active connections on {} \
                     threads at {:.3} sys/op (reactor: {:.3} sys/op)",
                    uring_row.idle,
                    uring_row.server_threads,
                    uring_row.syscalls_per_op,
                    reactor_row.syscalls_per_op
                );
            } else {
                println!("smoke: skipped: no io_uring (uring gate not enforced)");
            }
        } else {
            println!("\nsmoke: non-Linux target — thread budget reported, not enforced");
        }
        println!("smoke check passed");
    }
}
