//! Item-count scaling: millions of resident items per server under
//! the slab backend.
//!
//! The heap backend stores every value as its own allocation, so tens
//! of millions of small items fragment the allocator and bloat RSS
//! far past the accounted bytes. The slab backend packs items into
//! size-class pages. This binary measures what that buys at scale:
//!
//! 1. **Populate** — N small items (10 M by default), then compare
//!    the process RSS delta against the engine's accounted bytes. The
//!    gate is RSS ≤ 1.6× accounted: per-item index overhead plus page
//!    rounding, with no allocator blow-up.
//! 2. **Warmed gets** — random reads over the resident set with the
//!    counting global allocator: the gate is exactly zero allocations
//!    per hit (a page view is a refcount bump).
//! 3. **Eviction churn** — mixed-size writes past capacity so every
//!    store evicts. Gates: set p99 stays stable from the first half
//!    of the run to the second (no accumulating fragmentation stall),
//!    and the slab's page accounting still covers its live bytes.
//!
//! Run with: `cargo run --release --bin item_scale`
//!
//! `--smoke` shrinks the population for CI and exits non-zero if any
//! gate fails. `--items N` overrides the population size.

use std::time::Instant;

use proteus_bench::alloc_track::{is_counting, measure, CountingAlloc};
use proteus_bench::write_csv;
use proteus_cache::{CacheConfig, ShardedEngine, StorageKind};
use proteus_ring::hash::splitmix64;
use proteus_sim::SimTime;
use proteus_store::content_size_for;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const VALUE_LEN: usize = 64;
const KEY_LEN: usize = 12;
/// Charged per item beyond the payload (`CacheConfig` default).
const ITEM_OVERHEAD: u64 = 64;
/// Acceptance bar: resident memory over accounted bytes.
const RSS_BAR: f64 = 1.6;
/// Churn p99 in the second half may not exceed this multiple of the
/// first half (wall-clock is noisy; drift is what we're after).
const P99_DRIFT_BAR: f64 = 5.0;

/// Builds the fixed-width key for item `i` without allocating.
fn key_of(i: u64, buf: &mut [u8; KEY_LEN]) -> &[u8] {
    buf[..4].copy_from_slice(b"itm:");
    buf[4..].copy_from_slice(&i.to_le_bytes());
    &buf[..]
}

/// Resident set size of this process, from `/proc/self/status`.
fn rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// p99 of `samples`, destructively.
fn p99(samples: &mut [u64]) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let idx = (samples.len() - 1) * 99 / 100;
    *samples.select_nth_unstable(idx).1
}

fn main() {
    assert!(
        is_counting(),
        "counting allocator not registered; allocs/op would be vacuously zero"
    );
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let items: u64 = args
        .iter()
        .position(|a| a == "--items")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--items must be a number"))
        .unwrap_or(if smoke { 1_000_000 } else { 10_000_000 });

    // Capacity with ~20% headroom over the accounted cost, so the
    // populate phase never evicts and `len()` must land exactly on N.
    let per_item = KEY_LEN as u64 + VALUE_LEN as u64 + ITEM_OVERHEAD;
    let capacity = items * per_item * 12 / 10;
    let engine =
        ShardedEngine::new(CacheConfig::with_capacity(capacity).storage(StorageKind::Slab));
    println!(
        "item_scale: {items} items x {VALUE_LEN} B values, capacity {} MiB{}",
        capacity >> 20,
        if smoke { ", smoke mode" } else { "" }
    );

    // Phase 1: populate.
    let rss_before = rss_bytes().unwrap_or(0);
    let mut key_buf = [0u8; KEY_LEN];
    let mut value = [0u8; VALUE_LEN];
    let started = Instant::now();
    for i in 0..items {
        value[..8].copy_from_slice(&splitmix64(i).to_le_bytes());
        engine.put(key_of(i, &mut key_buf), &value[..], SimTime::ZERO);
    }
    let populate_elapsed = started.elapsed();
    assert_eq!(
        engine.len() as u64,
        items,
        "populate evicted — capacity headroom miscalculated"
    );
    let accounted = engine.bytes_used();
    let rss_after = rss_bytes().unwrap_or(0);
    let rss_delta = rss_after.saturating_sub(rss_before);
    let rss_ratio = rss_delta as f64 / accounted as f64;
    let slab = engine.slab_stats().expect("slab backend configured");
    println!(
        "populate: {:.2} M items/s, accounted {} MiB, RSS delta {} MiB ({rss_ratio:.3}x), \
         {} pages ({} MiB), fragmentation {:.3}",
        items as f64 / populate_elapsed.as_secs_f64() / 1e6,
        accounted >> 20,
        rss_delta >> 20,
        slab.pages_allocated,
        slab.page_bytes_total() >> 20,
        slab.fragmentation(),
    );

    // Phase 2: warmed random gets, counted exactly.
    let gets = items.min(2_000_000);
    let get_started = Instant::now();
    let ((), warm) = measure(|| {
        for i in 0..gets {
            let key_idx = splitmix64(i) % items;
            let hit = engine.get(key_of(key_idx, &mut key_buf), SimTime::ZERO);
            assert!(hit.is_some(), "resident key missing");
            std::hint::black_box(&hit);
        }
    });
    let get_elapsed = get_started.elapsed();
    println!(
        "warmed gets: {gets} ops, {:.0} ns/op, {} allocations",
        get_elapsed.as_nanos() as f64 / gets as f64,
        warm.allocations,
    );

    // Phase 3: eviction churn with mixed sizes. Every write is a new
    // key, so once the headroom is gone each store evicts from the
    // LRU tail; sizes are log-uniform in 16..=2048 so chunks free and
    // refill across different size classes.
    let churn_ops: u64 = if smoke { 400_000 } else { 2_000_000 };
    // The first quarter is an unmeasured warm-up: it burns through the
    // populate headroom and reaches steady-state eviction, so the
    // drift gate compares two steady halves instead of ramp vs steady.
    let warmup = churn_ops / 4;
    let mut latencies: Vec<u64> = Vec::with_capacity(churn_ops as usize);
    let mut churn_value = Vec::with_capacity(2048);
    let mut evictions = 0u64;
    for i in 0..warmup + churn_ops {
        let mut churn_key = [0u8; KEY_LEN];
        churn_key[..4].copy_from_slice(b"chn:");
        churn_key[4..].copy_from_slice(&i.to_le_bytes());
        let size = content_size_for(&churn_key, 16, 2048);
        churn_value.clear();
        churn_value.resize(size, (i % 251) as u8);
        let op_start = Instant::now();
        let outcome = engine.put(&churn_key[..], &churn_value[..], SimTime::ZERO);
        if i >= warmup {
            latencies.push(op_start.elapsed().as_nanos() as u64);
            evictions += outcome.evicted;
        }
    }
    let (first, second) = latencies.split_at(latencies.len() / 2);
    let (p99_first, p99_second) = (p99(&mut first.to_vec()), p99(&mut second.to_vec()));
    let drift = p99_second as f64 / p99_first.max(1) as f64;
    let slab_after = engine.slab_stats().expect("slab backend configured");
    println!(
        "churn: {churn_ops} mixed-size sets, {evictions} evictions, \
         p99 {p99_first} ns -> {p99_second} ns ({drift:.2}x), \
         fragmentation {:.3}, heap fallbacks {}",
        slab_after.fragmentation(),
        slab_after.heap_fallbacks,
    );

    // Accounting must survive the churn exactly: every shard's free
    // lists, class stats, and LRU agree, and the pages the slab holds
    // cover every live byte it claims.
    engine.assert_storage_consistent();
    assert!(
        slab_after.page_bytes_total() >= slab_after.live_bytes(),
        "slab claims {} live bytes in only {} page bytes",
        slab_after.live_bytes(),
        slab_after.page_bytes_total(),
    );

    if let Ok(path) = write_csv(
        "item_scale",
        &[
            "items",
            "accounted_mib",
            "rss_delta_mib",
            "rss_ratio",
            "get_ns_per_op",
            "get_allocs",
            "churn_p99_first_ns",
            "churn_p99_second_ns",
            "fragmentation",
        ],
        [vec![
            items.to_string(),
            (accounted >> 20).to_string(),
            (rss_delta >> 20).to_string(),
            format!("{rss_ratio:.4}"),
            format!("{:.1}", get_elapsed.as_nanos() as f64 / gets as f64),
            warm.allocations.to_string(),
            p99_first.to_string(),
            p99_second.to_string(),
            format!("{:.4}", slab_after.fragmentation()),
        ]],
    ) {
        println!("csv: {}", path.display());
    }

    if smoke {
        assert!(
            rss_ratio <= RSS_BAR,
            "RSS {rss_ratio:.3}x accounted bytes exceeds the {RSS_BAR}x bar"
        );
        assert_eq!(
            warm.allocations, 0,
            "warmed gets allocated — page views have regressed to copying"
        );
        assert!(
            drift <= P99_DRIFT_BAR,
            "churn p99 drifted {drift:.2}x (bar {P99_DRIFT_BAR}x) — \
             eviction cost is growing with fragmentation"
        );
        println!("smoke check passed");
    }
}
