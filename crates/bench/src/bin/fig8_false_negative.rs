//! Fig. 8: counting-Bloom-filter false-negative rate vs filter size.
//!
//! False negatives come only from counter overflow (Eq. 5): with
//! wrapping counters a hot counter can wrap past zero under heavy
//! churn and "lose" keys. The experiment inserts κ keys, churns a
//! delete/insert cycle to exercise overflow, and measures how many
//! *present* keys the filter denies. The saturating policy (the
//! system default) is measured alongside as the ablation — it must
//! show zero false negatives at every size.
//!
//! Regenerate with: `cargo run --release -p proteus-bench --bin fig8_false_negative`

use proteus_bloom::{config, BloomConfig, CountingBloomFilter, OverflowPolicy};

const HASHES: u32 = 4;
const COUNTER_BITS: u32 = 2; // narrow counters so overflow is reachable

fn measure(policy: OverflowPolicy, l: usize, kappa: u64) -> (f64, u64) {
    let cfg = BloomConfig::new(l, COUNTER_BITS, HASHES);
    let mut filter = CountingBloomFilter::with_policy(cfg, policy);
    for i in 0..kappa {
        filter.insert(&i.to_le_bytes());
    }
    // Churn: delete/re-insert a rotating window, driving counters up
    // and down across the overflow boundary.
    for round in 0..4u64 {
        for i in (round * 1000)..(round * 1000 + kappa / 4) {
            let k = (i % kappa).to_le_bytes();
            filter.remove(&k);
            filter.insert(&k);
        }
    }
    let false_negatives = (0..kappa)
        .filter(|i| !filter.contains(&i.to_le_bytes()))
        .count();
    (
        false_negatives as f64 / kappa as f64,
        filter.overflow_events(),
    )
}

fn main() {
    let fills: [u64; 3] = [50_000, 100_000, 200_000];
    let sizes_kb: [u64; 6] = [32, 64, 128, 256, 512, 1024];
    println!(
        "Fig. 8 — measured false-negative rate; h = {HASHES}, b = {COUNTER_BITS} \
         (wrapping counters, the Eq. 5 model) and the saturating ablation"
    );
    print!("{:>10}", "size");
    for &kappa in &fills {
        print!(" {:>20}", format!("κ = {kappa} (wrap)"));
    }
    print!(" {:>12}", "saturating");
    println!();
    for &kb in &sizes_kb {
        let l = (kb * 1024 * 8 / u64::from(COUNTER_BITS)) as usize;
        print!("{:>8}KB", kb);
        let mut any_saturating_fn = 0.0f64;
        for &kappa in &fills {
            let (rate, overflows) = measure(OverflowPolicy::Wrap, l, kappa);
            print!(" {:>12.5} ({:>5}k)", rate, overflows / 1000);
        }
        for &kappa in &fills {
            let (rate, _) = measure(OverflowPolicy::Saturate, l, kappa);
            any_saturating_fn = any_saturating_fn.max(rate);
        }
        print!(" {:>12.5}", any_saturating_fn);
        println!();
        // Eq. 5's bound for the middle fill, for orientation.
        let bound = config::false_negative_bound(l, COUNTER_BITS, HASHES, fills[1]);
        println!("{:>10}   Eq.5 bound at κ={}: {:.3e}", "", fills[1], bound);
    }
    println!(
        "\npaper anchor: false negatives vanish once the filter is large \
         enough that no counter overflows (512 KB in the paper's setting); \
         the saturating ablation is 0 at every size."
    );
}
