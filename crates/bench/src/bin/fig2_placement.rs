//! Fig. 2: the virtual-node placement for N = 6 and its
//! final-successor structure, plus the Theorem 1 count and exact
//! balance for every prefix.
//!
//! Regenerate with: `cargo run --release -p proteus-bench --bin fig2_placement`

use proteus_ring::{analysis, ProteusPlacement, ServerId};

fn main() {
    let n = 6;
    let p = ProteusPlacement::generate(n);
    println!(
        "Algorithm 1 placement for N = {n}: {} virtual nodes (Theorem 1 bound: {})",
        p.virtual_node_count(),
        n * (n - 1) / 2 + 1
    );
    println!("\nvirtual nodes (host ranges on the unit ring):");
    for server in 0..n as u32 {
        let id = ServerId::new(server);
        let nodes = p.virtual_nodes_of(id);
        print!("  {id}: ");
        let parts: Vec<String> = nodes
            .iter()
            .map(|v| format!("[{}, +{})", v.range.start, v.range.len))
            .collect();
        println!("{}", parts.join("  "));
    }

    println!("\nfinal-successor sets (Fig. 2's Ps_i):");
    for i in 1..=n as u32 {
        let ps = analysis::final_successors(&p, ServerId::new(i - 1));
        let names: Vec<String> = ps.iter().map(|s| s.to_string()).collect();
        println!("  Ps_{i} = {{{}}}", names.join(", "));
    }

    println!("\nexact ownership share per active prefix (Balance Condition):");
    print!("{:>6}", "n");
    for s in 1..=n {
        print!("{:>9}", format!("s{s}"));
    }
    println!();
    for active in 1..=n {
        print!("{active:>6}");
        for share in p.ownership_shares(active) {
            print!("{:>9}", share.to_string());
        }
        for _ in active..n {
            print!("{:>9}", "-");
        }
        println!();
    }

    println!("\nmigration matrix for the 6 → 5 transition (fraction of key space");
    println!("flowing from old-mapping server → new-mapping server):");
    let matrix = analysis::migration_matrix(&p, 6, 5, 200_000, 9);
    print!("{:>8}", "from\\to");
    for to in 1..=5 {
        print!("{:>9}", format!("s{to}"));
    }
    println!();
    for (from, row) in matrix.iter().enumerate() {
        print!("{:>8}", format!("s{}", from + 1));
        for &share in row.iter().take(5) {
            print!("{share:>9.4}");
        }
        println!();
    }
    println!("(expected: only row s6 is nonzero, at 1/30 ≈ 0.0333 per survivor)");

    println!("\nminimal-migration check (measured remapped fraction vs |Δn|/max):");
    for from in (2..=n).rev() {
        let to = from - 1;
        let f = analysis::remap_fraction(&p, from, to, 100_000, 1);
        println!(
            "  {from} → {to}: measured {:.4}, bound {:.4}",
            f,
            analysis::minimal_remap_fraction(from, to)
        );
    }
}
