//! Runs the full four-scenario evaluation on a *real* wikibench trace
//! file (Urdaneta et al. format), if you have one.
//!
//! ```text
//! cargo run --release -p proteus-bench --bin real_trace -- TRACE_FILE [compression]
//! ```
//!
//! The file is distilled exactly as the paper describes (English
//! Wikipedia article requests only), time-compressed (default 60:1 to
//! match the reproduction's configuration), and replayed through all
//! four Table II scenarios with a load-proportional plan.

use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

use proteus_bench::{fmt_opt_ms, SIM_SEED};
use proteus_core::{ClusterConfig, ClusterSim, ProvisioningPlan, Scenario};
use proteus_workload::wikipedia;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first() else {
        eprintln!("usage: real_trace TRACE_FILE [compression]");
        eprintln!("  TRACE_FILE: wikibench-format trace (counter epoch url flag)");
        eprintln!("  compression: time compression factor, default 60");
        return ExitCode::FAILURE;
    };
    let compression: f64 = args
        .get(1)
        .map_or(Ok(60.0), |s| s.parse())
        .unwrap_or_else(|_| {
            eprintln!("invalid compression; using 60");
            60.0
        });
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("distilling {path} (compression {compression}:1) ...");
    let (trace, titles, stats) =
        match wikipedia::distill(BufReader::new(file), "en.wikipedia.org", compression) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("distillation failed: {e}");
                return ExitCode::FAILURE;
            }
        };
    println!(
        "distilled: {} lines → {} article requests over {} distinct titles \
         ({} skipped)",
        stats.lines, stats.kept, stats.distinct_titles, stats.skipped
    );
    if trace.is_empty() {
        eprintln!("no usable requests in the trace");
        return ExitCode::FAILURE;
    }
    let span = trace.records().last().map(|r| r.at).unwrap_or_default();
    let mut config = ClusterConfig::paper_scale();
    config.pages = titles.len() as u64;
    // Size slots so the trace covers the configured day.
    config.slots = ((span.as_secs_f64() / config.slot.as_secs_f64()).ceil() as usize).max(2);
    println!(
        "compressed span {:.0}s → {} slots of {}",
        span.as_secs_f64(),
        config.slots,
        config.slot
    );
    let plan = ProvisioningPlan::load_proportional(
        &trace.requests_per_slot(config.slot, config.slots),
        config.cache_servers,
        4,
    );
    println!(
        "plan: mean {:.1} of {} servers, {} transitions",
        plan.mean_active(),
        config.cache_servers,
        plan.transitions()
    );
    println!(
        "\n{:<16} {:>10} {:>14} {:>14} {:>12}",
        "scenario", "hit%", "typ p99.9", "worst p99.9", "balance"
    );
    for scenario in Scenario::all() {
        eprintln!("  running {} ...", scenario.name());
        let report = ClusterSim::new(config.clone(), scenario, &trace, &plan, SIM_SEED).run();
        let ratios: Vec<f64> = report
            .balance_ratio_per_slot()
            .into_iter()
            .flatten()
            .collect();
        let balance = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
        println!(
            "{:<16} {:>9.1}% {:>14} {:>14} {:>12.3}",
            scenario.name(),
            report.counters.cache_hit_ratio() * 100.0,
            fmt_opt_ms(report.typical_bucket_quantile(0.999)),
            fmt_opt_ms(report.worst_bucket_quantile(0.999)),
            balance,
        );
    }
    ExitCode::SUCCESS
}
