//! Ablation: web-tier request coalescing (dog-pile suppression).
//!
//! The paper's testbed load is closed-loop (think-time users), which
//! self-throttles during overload; this open-loop reproduction relies
//! on the web tier coalescing concurrent misses for one key into a
//! single database fetch (the countermeasure of the paper's twelfth
//! reference) to keep Naive's storms recoverable. This experiment runs
//! Naive and Proteus with coalescing on and off.
//!
//! Regenerate with: `cargo run --release -p proteus-bench --bin ablation_coalescing`

use proteus_bench::{Evaluation, SIM_SEED};
use proteus_core::{ClusterSim, Scenario};

fn main() {
    let eval = Evaluation::short();
    println!(
        "{:<10} {:>12} {:>12} {:>14} {:>14} {:>12}",
        "scenario", "coalescing", "hit ratio", "db fetches", "typical p99.9", "worst p99.9"
    );
    for scenario in [Scenario::Naive, Scenario::Proteus] {
        for coalesce in [true, false] {
            let mut config = eval.config.clone();
            config.coalesce_db_fetches = coalesce;
            let report = ClusterSim::new(config, scenario, &eval.trace, &eval.plan, SIM_SEED).run();
            println!(
                "{:<10} {:>12} {:>11.1}% {:>14} {:>12.0}ms {:>12.0}ms",
                scenario.name(),
                if coalesce { "on" } else { "off" },
                report.counters.cache_hit_ratio() * 100.0,
                report.counters.database_total(),
                report
                    .typical_bucket_quantile(0.999)
                    .map_or(0.0, |d| d.as_millis_f64()),
                report
                    .worst_bucket_quantile(0.999)
                    .map_or(0.0, |d| d.as_millis_f64()),
            );
        }
    }
    println!(
        "\nexpected: Proteus barely notices (its transitions produce no miss \
         storm to coalesce); Naive without coalescing collapses — duplicate \
         fetches for hot keys swamp the shard pools and the backlog never \
         drains within a slot."
    );
}
