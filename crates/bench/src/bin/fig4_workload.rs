//! Fig. 4: the diurnal workload curve and the provisioning
//! controller's n(t).
//!
//! The paper runs its feedback loop (0.4 s reference, 0.5 s bound,
//! per-slot updates) once, with Proteus, to obtain the number of
//! running cache servers per slot, then applies that curve to all
//! scenarios. This binary prints both that feedback-derived curve and
//! the deterministic load-proportional plan the other figure binaries
//! share.
//!
//! Regenerate with: `cargo run --release -p proteus-bench --bin fig4_workload`

use proteus_bench::{sparkline, Evaluation, SIM_SEED};
use proteus_core::{ClusterSim, FeedbackController, ProvisioningPlan, Scenario};
use proteus_sim::SimDuration;

fn main() {
    let eval = Evaluation::standard();
    let volumes = eval.volumes();
    println!(
        "workload: {} requests over {} slots of {} (peak/nadir of the rate \
         curve: 2.0)",
        eval.trace.len(),
        eval.config.slots,
        eval.config.slot
    );

    // The feedback loop, run live on Proteus (the paper's procedure).
    eprintln!("  running feedback loop on proteus ...");
    let controller = FeedbackController::paper_defaults(eval.config.cache_servers)
        .min_servers(2)
        .set_points(SimDuration::from_millis(400), SimDuration::from_millis(500));
    let all_on = ProvisioningPlan::all_on(eval.config.slots, eval.config.cache_servers);
    let feedback_report = ClusterSim::new(
        eval.config.clone(),
        Scenario::Proteus,
        &eval.trace,
        &all_on,
        SIM_SEED,
    )
    .with_feedback(controller)
    .run();

    println!(
        "\n{:>4} {:>10} {:>14} {:>16}",
        "slot", "requests", "n(t) feedback", "n(t) load-prop"
    );
    for (slot, &volume) in volumes.iter().enumerate() {
        println!(
            "{:>4} {:>10} {:>14} {:>16}",
            slot,
            volume,
            feedback_report.active_per_slot[slot],
            eval.plan.active_at(slot),
        );
    }

    let vol_f: Vec<f64> = volumes.iter().map(|&v| v as f64).collect();
    let fb_f: Vec<f64> = feedback_report
        .active_per_slot
        .iter()
        .map(|&n| n as f64)
        .collect();
    let lp_f: Vec<f64> = eval.plan.counts().iter().map(|&n| n as f64).collect();
    println!("\nrequests  [{}]", sparkline(&vol_f, false));
    println!("feedback  [{}]", sparkline(&fb_f, false));
    println!("load-prop [{}]", sparkline(&lp_f, false));
    // Skip the first two slots when reporting the ratio: sessions ramp
    // up from an empty system there.
    let settled = &vol_f[2..];
    println!(
        "\npeak/nadir of the realised volume (settled slots): {:.2} \
         (paper's trace: ≈2); \
         mean active servers: feedback {:.1}, load-proportional {:.1} of {}",
        settled.iter().copied().fold(f64::MIN, f64::max)
            / settled.iter().copied().fold(f64::MAX, f64::min),
        fb_f.iter().sum::<f64>() / fb_f.len() as f64,
        eval.plan.mean_active(),
        eval.config.cache_servers,
    );
}
