//! Overhead gate for the telemetry record path.
//!
//! The observability layer's contract is that recording a latency into
//! a [`LatencyHistogram`] is safe to leave on in production: **zero
//! heap allocations** and a handful of relaxed atomics per record.
//! Throughput numbers can't prove the first claim and hand-waving
//! can't prove the second, so this binary measures both with the
//! counting global allocator registered:
//!
//! 1. exact allocations across millions of `record` calls — must be
//!    zero, single-threaded and multi-threaded;
//! 2. mean nanoseconds per record against a budget loose enough for
//!    any CI runner but tight enough to catch an accidental lock or
//!    allocation sneaking into the path.
//!
//! The same gate covers the per-op-class counter path
//! ([`OpLatencies::record`]) and [`Counter::inc`], since those sit on
//! the server's per-command hot path too. Snapshots are *allowed* to
//! allocate (they build an owned bucket vector); the gate measures
//! them separately just to print the cost.
//!
//! `--smoke` is the CI entry point: shorter runs, hard assertions,
//! non-zero exit on regression.
//!
//! Run with: `cargo run --release -p proteus-bench --bin obs_overhead -- --smoke`

use std::sync::Arc;
use std::time::{Duration, Instant};

use proteus_bench::alloc_track::{is_counting, measure, CountingAlloc};
use proteus_obs::{Counter, LatencyHistogram, OpClass, OpLatencies};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Generous per-record budget: the path is ~5 relaxed atomic RMWs and
/// should sit well under 100 ns on anything modern, but CI runners
/// are shared and noisy. A lock or allocation pushes the mean past
/// this immediately; honest jitter does not.
const NS_PER_RECORD_BUDGET: f64 = 1_000.0;

fn bench_single(hist: &LatencyHistogram, ops: u64) -> (Duration, u64) {
    let (elapsed, allocs) = measure(|| {
        let started = Instant::now();
        for i in 0..ops {
            // Spread across buckets so the sweep isn't one cache line.
            hist.record_nanos(100 + (i % 100_000));
        }
        started.elapsed()
    });
    (elapsed, allocs.allocations)
}

/// Contended measurement with thread setup excluded: workers are
/// spawned *before* the measured window and park on a barrier; the
/// allocation and timing snapshots bracket only the record loops
/// (spawn/join allocate thread stacks and `JoinHandle`s, which would
/// otherwise drown the zero-allocs assertion).
fn bench_threaded(
    hist: &Arc<LatencyHistogram>,
    threads: usize,
    ops_per_thread: u64,
) -> (Duration, u64) {
    let start = Arc::new(std::sync::Barrier::new(threads + 1));
    let done = Arc::new(std::sync::Barrier::new(threads + 1));
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let hist = Arc::clone(hist);
            let start = Arc::clone(&start);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                start.wait();
                for i in 0..ops_per_thread {
                    hist.record_nanos(100 + ((i + t as u64 * 7919) % 100_000));
                }
                done.wait();
            })
        })
        .collect();
    start.wait();
    let (elapsed, allocs) = measure(|| {
        let started = Instant::now();
        done.wait();
        started.elapsed()
    });
    for w in workers {
        w.join().expect("recorder thread panicked");
    }
    (elapsed, allocs.allocations)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    assert!(
        is_counting(),
        "counting allocator not registered — the gate would pass vacuously"
    );
    let ops: u64 = if smoke { 2_000_000 } else { 20_000_000 };
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get().min(8));
    println!(
        "telemetry record-path overhead ({ops} ops{}):",
        if smoke { ", smoke mode" } else { "" }
    );

    // --- histogram, single-threaded -------------------------------
    let hist = LatencyHistogram::new();
    // Warm-up: the first record on a stripe touches every page of its
    // bucket array; thread-stripe assignment also happens once.
    hist.record_nanos(1);
    let (elapsed, allocs) = bench_single(&hist, ops);
    let ns = elapsed.as_secs_f64() * 1e9 / ops as f64;
    println!("  histogram 1 thread : {ns:>7.1} ns/record, {allocs} allocs");
    assert_eq!(allocs, 0, "histogram record path allocated");
    assert!(
        ns < NS_PER_RECORD_BUDGET,
        "record path too slow: {ns:.1} ns > {NS_PER_RECORD_BUDGET} ns budget"
    );

    // --- histogram, contended -------------------------------------
    let hist = Arc::new(LatencyHistogram::new());
    let (elapsed, allocs) = bench_threaded(&hist, threads, ops / threads as u64);
    let ns = elapsed.as_secs_f64() * 1e9 / ops as f64;
    println!("  histogram {threads} threads: {ns:>7.1} ns/record (wall/ops), {allocs} allocs");
    assert_eq!(allocs, 0, "contended record path allocated");

    // --- per-op-class registry path -------------------------------
    let ops_reg = OpLatencies::default();
    ops_reg.record(OpClass::Get, Duration::from_nanos(1));
    let (elapsed, allocs) = measure(|| {
        let started = Instant::now();
        for i in 0..ops {
            let class = if i % 10 == 0 {
                OpClass::Set
            } else {
                OpClass::Get
            };
            ops_reg.record(class, Duration::from_nanos(100 + (i % 100_000)));
        }
        started.elapsed()
    });
    let ns = elapsed.as_secs_f64() * 1e9 / ops as f64;
    println!(
        "  op-class registry  : {ns:>7.1} ns/record, {} allocs",
        allocs.allocations
    );
    assert_eq!(allocs.allocations, 0, "op-class record path allocated");
    assert!(
        ns < NS_PER_RECORD_BUDGET,
        "op-class record too slow: {ns:.1} ns > {NS_PER_RECORD_BUDGET} ns budget"
    );

    // --- plain counter --------------------------------------------
    let counter = Counter::new();
    let (elapsed, allocs) = measure(|| {
        let started = Instant::now();
        for _ in 0..ops {
            counter.inc();
        }
        started.elapsed()
    });
    let ns = elapsed.as_secs_f64() * 1e9 / ops as f64;
    println!(
        "  counter inc        : {ns:>7.1} ns/inc,    {} allocs",
        allocs.allocations
    );
    assert_eq!(allocs.allocations, 0, "counter inc allocated");

    // --- snapshot cost (allowed to allocate; informational) -------
    let (snap, allocs) = measure(|| hist.snapshot());
    println!(
        "  snapshot           : {} allocs, {} bytes (count {})",
        allocs.allocations,
        allocs.bytes,
        snap.count()
    );

    println!("overhead gate passed: 0 allocs/record, mean under budget");
}
