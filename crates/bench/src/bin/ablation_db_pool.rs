//! Ablation: database connection-pool size — the queueing bottleneck
//! that turns miss storms into Fig. 9's delay spikes.
//!
//! Sweeps the per-shard pool and reports each scenario's worst
//! 99.9th percentile: with deep pools even Naive's storms are absorbed
//! (latency ≈ service-time tail); with shallow pools Naive collapses
//! while Proteus — whose transitions send no storm at the database —
//! stays at the Static baseline throughout.
//!
//! Regenerate with: `cargo run --release -p proteus-bench --bin ablation_db_pool`

use proteus_bench::{Evaluation, SIM_SEED};
use proteus_core::{ClusterSim, Scenario};

fn main() {
    let eval = Evaluation::short();
    println!(
        "worst p99.9 (ms) vs per-shard pool size ({} shards):",
        eval.config.db_shards
    );
    print!("{:>6}", "pool");
    for sc in Scenario::all() {
        print!(" {:>15}", sc.name());
    }
    println!();
    for pool in [3usize, 4, 5, 6, 8, 12] {
        print!("{pool:>6}");
        for scenario in Scenario::all() {
            let mut config = eval.config.clone();
            config.db_pool_per_shard = pool;
            let report = ClusterSim::new(config, scenario, &eval.trace, &eval.plan, SIM_SEED).run();
            print!(
                " {:>15.0}",
                report
                    .worst_bucket_quantile(0.999)
                    .map_or(0.0, |d| d.as_millis_f64())
            );
        }
        println!();
    }
    println!(
        "\nexpected: Static and Proteus stay near the service-time tail at \
         every pool size; Naive's spike grows explosively as the pool \
         shrinks; Consistent sits in between. The paper's testbed sits in \
         the regime where Naive spikes by orders of magnitude but recovers."
    );
}
