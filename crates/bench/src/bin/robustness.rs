//! Multi-seed robustness check: are the Fig. 9/11 conclusions stable
//! across simulation randomness?
//!
//! Replays the shared trace through Static, Naive, and Proteus with
//! five different simulation seeds and reports mean ± 95% CI of the
//! headline metrics. The paper runs each experiment once on hardware;
//! a simulator can afford replication, and the conclusions should
//! (and do) hold far outside the confidence bands.
//!
//! Regenerate with: `cargo run --release -p proteus-bench --bin robustness`

use proteus_bench::Evaluation;
use proteus_core::{ClusterSim, Scenario};
use proteus_sim::Welford;

fn main() {
    let eval = Evaluation::short();
    let seeds = [7u64, 11, 23, 42, 101];
    println!("5 replicates per scenario (seeds {seeds:?}); mean ± 95% CI");
    println!(
        "{:<16} {:>22} {:>22} {:>20}",
        "scenario", "worst p99.9 (ms)", "typical p99.9 (ms)", "cache energy (Wh)"
    );
    for scenario in [Scenario::Static, Scenario::Naive, Scenario::Proteus] {
        let mut worst = Welford::new();
        let mut typical = Welford::new();
        let mut energy = Welford::new();
        for &seed in &seeds {
            eprintln!("  {} seed {} ...", scenario.name(), seed);
            let report =
                ClusterSim::new(eval.config.clone(), scenario, &eval.trace, &eval.plan, seed).run();
            worst.push(
                report
                    .worst_bucket_quantile(0.999)
                    .map_or(0.0, |d| d.as_millis_f64()),
            );
            typical.push(
                report
                    .typical_bucket_quantile(0.999)
                    .map_or(0.0, |d| d.as_millis_f64()),
            );
            energy.push(report.cache_energy_wh());
        }
        println!(
            "{:<16} {:>12.0} ± {:>6.0} {:>13.0} ± {:>5.0} {:>12.1} ± {:>4.1}",
            scenario.name(),
            worst.mean(),
            worst.ci95_half_width(),
            typical.mean(),
            typical.ci95_half_width(),
            energy.mean(),
            energy.ci95_half_width(),
        );
    }
    println!(
        "\nexpected: the Naive-vs-Proteus worst-percentile gap (orders of \
         magnitude) dwarfs the confidence bands; the energy bands are \
         negligible (provisioning, not randomness, determines energy)."
    );
}
