//! Table I / §IV-B: Bloom filter parameters and the memory-optimal
//! configuration (Eq. 10).
//!
//! Regenerate with: `cargo run --release -p proteus-bench --bin table1_bloom_config`

use proteus_bloom::{config, BloomConfig};

fn main() {
    println!("Table I — Bloom filter parameters");
    println!("  h : number of different hash functions");
    println!("  κ : number of inserted keys");
    println!("  l : number of counters in Bloom filter");
    println!("  b : number of bits in each counter");
    println!();

    println!("Eq. 10 — memory-optimal (l, b) for given (κ, h, p_p, p_n):");
    println!(
        "{:>10} {:>3} {:>8} {:>8} {:>10} {:>3} {:>10} {:>12} {:>12}",
        "κ", "h", "p_p", "p_n", "l", "b", "memory", "Gp(l)", "Gn(l,b)"
    );
    for (kappa, h, pp, pn) in [
        (10_000u64, 4u32, 1e-4, 1e-4), // the paper's worked example
        (10_000, 2, 1e-4, 1e-4),
        (10_000, 6, 1e-4, 1e-4),
        (100_000, 4, 1e-4, 1e-4),
        (262_144, 4, 1e-4, 1e-4), // 1 GB server at 4 KB objects (Fig. 6 setting)
        (2_560_000, 4, 1e-3, 1e-3), // "roughly 2,560,000 pages in cache"
        (10_000, 4, 1e-2, 1e-2),
        (10_000, 4, 1e-6, 1e-6),
    ] {
        let cfg = BloomConfig::optimal(kappa, h, pp, pn);
        println!(
            "{:>10} {:>3} {:>8.0e} {:>8.0e} {:>10} {:>3} {:>8} KB {:>12.3e} {:>12.3e}",
            kappa,
            h,
            pp,
            pn,
            cfg.counters,
            cfg.counter_bits,
            cfg.memory_bytes() / 1024,
            config::false_positive_rate(cfg.counters, h, kappa),
            config::false_negative_bound(cfg.counters, cfg.counter_bits, h, kappa),
        );
    }
    println!();
    let paper = BloomConfig::optimal(10_000, 4, 1e-4, 1e-4);
    println!(
        "paper check (κ=10⁴, h=4, p=10⁻⁴): l = {} (paper: 4×10⁵ is \"more than\n\
         enough\"), b = {} (paper: 3), memory = {:.0} KB (paper: ≈150 KB)",
        paper.counters,
        paper.counter_bits,
        paper.memory_bytes() as f64 / 1024.0
    );
}
