//! Hot-key load concentration on the live TCP plane, with and without
//! client-side replication.
//!
//! Proteus spreads the *key space* evenly, but a skewed workload still
//! concentrates *traffic*: one celebrity object pins its home server
//! at ~`f*N` times the mean while the other servers idle. The
//! [`ClusterClient`]'s hot-key path detects such keys from its own
//! fetch counts (a space-saving sketch), replicates them to `R`
//! servers on independent rings, and routes reads power-of-two-choices
//! by the client's own load estimate — flattening the load without any
//! server-side coordination.
//!
//! Two scenarios, each measured with replication off and on:
//!
//! - **celebrity** — 90% of requests hit one object, the rest are
//!   uniform over the tail (the paper's "single viral page" case).
//! - **zipf** — Zipf(s = 1.2) popularity over the whole page set,
//!   the heavy-tailed regime where a handful of keys dominate.
//!
//! The reported figure is `max/mean` per-server load (get traffic per
//! server over the measured window, from each server's own `stats`),
//! the same imbalance metric as the paper's Figure 5.
//!
//! Run with: `cargo run --release -p proteus-bench --bin hot_key`
//!
//! `--smoke` is the CI gate: the celebrity scenario with replication
//! must flatten to `max/mean <= 1.5` (without replication it sits near
//! `N`, recorded in the same table for contrast).

use parking_lot::Mutex;
use proteus_bench::write_csv;
use proteus_cache::CacheConfig;
use proteus_net::{CacheServer, ClientConfig, ClusterClient, HotKeyConfig};
use proteus_ring::ProteusPlacement;
use proteus_sim::SimRng;
use proteus_store::{ShardedStore, StoreConfig};
use proteus_workload::ZipfSampler;

const SERVERS: usize = 6;
const TAIL_KEYS: u64 = 600;
const CELEBRITY_FRACTION: f64 = 0.9;
const ZIPF_EXPONENT: f64 = 1.2;
/// CI gate on the celebrity scenario with replication enabled.
const SMOKE_MAX_MEAN: f64 = 1.5;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Scenario {
    Celebrity,
    Zipf,
}

impl Scenario {
    fn name(self) -> &'static str {
        match self {
            Scenario::Celebrity => "celebrity",
            Scenario::Zipf => "zipf",
        }
    }

    /// The next key of the request stream, deterministic per seed.
    fn key(self, rng: &mut SimRng, zipf: &ZipfSampler) -> Vec<u8> {
        match self {
            Scenario::Celebrity => {
                let toss = rng.next_u64() as f64 / u64::MAX as f64;
                if toss < CELEBRITY_FRACTION {
                    b"celebrity".to_vec()
                } else {
                    format!("page:{}", rng.next_u64() % TAIL_KEYS).into_bytes()
                }
            }
            Scenario::Zipf => format!("page:{}", zipf.sample(rng)).into_bytes(),
        }
    }
}

/// Per-server get traffic (`get_hits + get_misses` from the server's
/// own `stats`) — the load metric the imbalance ratio is computed on.
fn get_loads(cluster: &ClusterClient, n: usize) -> Vec<u64> {
    (0..n)
        .map(|s| {
            let stats = cluster.client(s).stats().expect("stats");
            let read = |name: &str| {
                stats
                    .iter()
                    .find(|(k, _)| k == name)
                    .and_then(|(_, v)| v.parse::<u64>().ok())
                    .unwrap_or_else(|| panic!("server {s} missing stat {name}"))
            };
            read("get_hits") + read("get_misses")
        })
        .collect()
}

struct Row {
    scenario: &'static str,
    replicas: usize,
    requests: u64,
    max_mean: f64,
    replica_hit_share: f64,
    replicated_keys: i64,
}

/// Runs one scenario against a fresh cluster and returns the measured
/// per-server imbalance over the request window.
fn measure(scenario: Scenario, replicas: usize, requests: u64) -> Row {
    let servers: Vec<CacheServer> = (0..SERVERS)
        .map(|_| CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(32 << 20)).unwrap())
        .collect();
    let addrs: Vec<_> = servers.iter().map(CacheServer::addr).collect();
    let strategy = Box::new(ProteusPlacement::generate(SERVERS));
    let cluster = if replicas < 2 {
        ClusterClient::connect_with(&addrs, strategy, ClientConfig::default()).unwrap()
    } else {
        ClusterClient::connect_replicated(
            &addrs,
            strategy,
            ClientConfig::default(),
            HotKeyConfig {
                replicas,
                hot_key_threshold: 32,
                sketch_capacity: 64,
            },
        )
        .unwrap()
    };
    let db = Mutex::new(ShardedStore::new(StoreConfig {
        object_size: 256,
        ..StoreConfig::default()
    }));
    let zipf = ZipfSampler::new(TAIL_KEYS, ZIPF_EXPONENT);

    // Warm-up: populate the working set and give the sketch enough
    // samples to promote the heavy hitters, then snapshot the per-
    // server counters so the measured window starts clean.
    let mut rng = SimRng::seed_from_u64(7);
    for _ in 0..requests / 4 {
        let key = scenario.key(&mut rng, &zipf);
        cluster.fetch(&key, &db).expect("warm-up fetch");
    }
    let before = get_loads(&cluster, SERVERS);
    let hits_before = cluster.hot_key_stats().map(|s| s.replica_hits).unwrap_or(0);

    for _ in 0..requests {
        let key = scenario.key(&mut rng, &zipf);
        cluster.fetch(&key, &db).expect("measured fetch");
    }

    let loads: Vec<u64> = get_loads(&cluster, SERVERS)
        .iter()
        .zip(&before)
        .map(|(now, then)| now - then)
        .collect();
    let max = loads.iter().copied().max().unwrap_or(0) as f64;
    let mean = loads.iter().sum::<u64>() as f64 / SERVERS as f64;
    let hot = cluster.hot_key_stats();
    let row = Row {
        scenario: scenario.name(),
        replicas,
        requests,
        max_mean: if mean > 0.0 { max / mean } else { 0.0 },
        replica_hit_share: hot
            .as_ref()
            .map(|s| (s.replica_hits - hits_before) as f64 / requests as f64)
            .unwrap_or(0.0),
        replicated_keys: hot.as_ref().map(|s| s.replicated_keys).unwrap_or(0),
    };
    drop(cluster);
    for s in servers {
        s.stop();
    }
    row
}

fn print_rows(rows: &[Row]) {
    println!("\nscenario  | replicas | requests | max/mean | replica hits | hot keys");
    println!("----------+----------+----------+----------+--------------+---------");
    for r in rows {
        println!(
            "{:<9} | {:>8} | {:>8} | {:>8.2} | {:>11.1}% | {:>8}",
            r.scenario,
            r.replicas,
            r.requests,
            r.max_mean,
            r.replica_hit_share * 100.0,
            r.replicated_keys,
        );
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let requests: u64 = if smoke { 8_000 } else { 40_000 };
    println!(
        "hot-key replication ({SERVERS} servers, {requests} measured requests per run{})",
        if smoke { ", smoke mode" } else { "" }
    );

    let rows: Vec<Row> = [Scenario::Celebrity, Scenario::Zipf]
        .iter()
        .flat_map(|&scenario| {
            [
                measure(scenario, 1, requests),
                measure(scenario, SERVERS, requests),
            ]
        })
        .collect();
    print_rows(&rows);

    let csv = rows.iter().map(|r| {
        vec![
            r.scenario.to_string(),
            r.replicas.to_string(),
            r.requests.to_string(),
            format!("{:.3}", r.max_mean),
            format!("{:.4}", r.replica_hit_share),
            r.replicated_keys.to_string(),
        ]
    });
    if let Ok(path) = write_csv(
        "hot_key",
        &[
            "scenario",
            "replicas",
            "requests",
            "max_mean_load",
            "replica_hit_share",
            "replicated_keys",
        ],
        csv,
    ) {
        println!("\nwrote {}", path.display());
    }

    if smoke {
        let cell = |scenario: &str, replicas: usize| {
            rows.iter()
                .find(|r| r.scenario == scenario && r.replicas == replicas)
                .expect("scenario row")
        };
        let unreplicated = cell("celebrity", 1);
        let replicated = cell("celebrity", SERVERS);
        println!(
            "celebrity max/mean: {:.2} unreplicated -> {:.2} with {SERVERS} replicas",
            unreplicated.max_mean, replicated.max_mean
        );
        assert!(
            unreplicated.max_mean > replicated.max_mean,
            "replication must reduce the imbalance ({:.2} -> {:.2})",
            unreplicated.max_mean,
            replicated.max_mean
        );
        assert!(
            replicated.max_mean <= SMOKE_MAX_MEAN,
            "celebrity with replication must flatten to max/mean <= {SMOKE_MAX_MEAN}, got {:.2}",
            replicated.max_mean
        );
        assert!(
            replicated.replicated_keys >= 1,
            "the celebrity key must be promoted"
        );
        assert!(
            replicated.replica_hit_share > 0.1,
            "p2c must spread a meaningful share of reads to replicas, got {:.1}%",
            replicated.replica_hit_share * 100.0
        );
        println!("smoke check passed");
    }
}
