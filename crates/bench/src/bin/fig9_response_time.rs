//! Fig. 9: 99.9th-percentile response time over the day (480 buckets,
//! log scale) for all four scenarios — the paper's headline figure.
//!
//! Expected shape: `Naive` shows huge spikes at every provisioning
//! change (mass remapping → miss storm → database queueing);
//! `Consistent` shows smaller but visible bumps; `Proteus` tracks the
//! `Static` baseline with no transition spikes.
//!
//! Regenerate with: `cargo run --release -p proteus-bench --bin fig9_response_time`

use proteus_bench::{fmt_opt_ms, sparkline, write_csv, Evaluation};

fn main() {
    let eval = Evaluation::standard();
    let reports = eval.run_all();

    println!(
        "Fig. 9 — p99.9 response time per bucket ({} buckets over {} slots)",
        eval.config.response_buckets, eval.config.slots
    );

    // Log-scale sparklines, the visual analogue of the figure.
    println!("\nlog-scale profile per scenario:");
    for (sc, report) in &reports {
        let series: Vec<f64> = report
            .quantile_per_bucket(0.999)
            .iter()
            .map(|q| q.map_or(1e-3, |d| d.as_secs_f64()))
            .collect();
        // Downsample 480 buckets to 96 columns.
        let cols: Vec<f64> = series
            .chunks(5)
            .map(|c| c.iter().copied().fold(f64::MIN, f64::max))
            .collect();
        println!("{:>15} [{}]", sc.name(), sparkline(&cols, true));
    }

    // Numeric table on slot granularity (the worst bucket per slot).
    let per_slot = eval.config.response_buckets / eval.config.slots;
    println!("\nworst in-slot p99.9 (ms):");
    print!("{:>4} {:>6}", "slot", "n(t)");
    for (sc, _) in &reports {
        print!(" {:>15}", sc.name());
    }
    println!();
    for slot in 0..eval.config.slots {
        print!("{:>4} {:>6}", slot, eval.plan.active_at(slot));
        for (_, report) in &reports {
            let worst = report.latency_buckets[slot * per_slot..(slot + 1) * per_slot]
                .iter()
                .filter_map(|h| h.quantile(0.999))
                .max();
            print!(" {:>15}", fmt_opt_ms(worst));
        }
        println!();
    }

    println!("\nsummary:");
    println!(
        "{:<16} {:>12} {:>14} {:>14} {:>10} {:>10}",
        "scenario", "hit ratio", "typical p99.9", "worst p99.9", "db total", "migrated"
    );
    for (sc, report) in &reports {
        println!(
            "{:<16} {:>11.1}% {:>12.0}ms {:>12.0}ms {:>10} {:>10}",
            sc.name(),
            report.counters.cache_hit_ratio() * 100.0,
            report
                .typical_bucket_quantile(0.999)
                .map_or(0.0, |d| d.as_millis_f64()),
            report
                .worst_bucket_quantile(0.999)
                .map_or(0.0, |d| d.as_millis_f64()),
            report.counters.database_total(),
            report.counters.migrated,
        );
    }
    // Plot-ready CSV: one row per bucket, one column per scenario (ms).
    let header: Vec<String> = std::iter::once("bucket".to_string())
        .chain(reports.iter().map(|(sc, _)| sc.name().to_string()))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let rows = (0..eval.config.response_buckets).map(|b| {
        std::iter::once(b as f64)
            .chain(reports.iter().map(|(_, r)| {
                r.latency_buckets[b]
                    .quantile(0.999)
                    .map_or(f64::NAN, |d| d.as_millis_f64())
            }))
            .collect::<Vec<f64>>()
    });
    match write_csv("fig9_p999_ms", &header_refs, rows) {
        Ok(path) => println!("\nCSV written to {}", path.display()),
        Err(e) => eprintln!("\nCSV export failed: {e}"),
    }

    println!(
        "\npaper anchor: \"there is a huge response time spike\" for Naive at \
         every change of n(t); Consistent shows \"still considerable \
         performance degradation\"; with Proteus \"the delay spike is \
         clearly removed\" and matches Static."
    );
}
