//! Fault-injection experiment over **real sockets**: kill a live cache
//! server mid-sweep and measure what the web tier actually pays.
//!
//! The DES twin (`failure_recovery`) measures the *policy* question —
//! how each provisioning scheme's hit ratio recovers after a crash.
//! This binary measures the *mechanism* question on the TCP tier: with
//! retry/backoff, circuit breakers, and degrade-to-DB in place, a dead
//! server must cost latency and database load, never errors. It runs
//! three phases against a 4-server cluster behind fault proxies:
//!
//! 1. **healthy** — warmed sweep, all hits;
//! 2. **one server dark** — the proxy blackholes one server mid-run;
//!    its keys degrade to the database, the breaker caps connect
//!    pressure to O(probes);
//! 3. **recovered** — the proxy forwards again; the breaker's probe
//!    closes the circuit and the key space repopulates on demand.
//!
//! Regenerate with: `cargo run --release -p proteus-bench --bin failure_recovery_tcp`

use std::time::{Duration, Instant};

use parking_lot::Mutex;
use proteus_cache::CacheConfig;
use proteus_net::{CacheServer, ClientConfig, ClusterClient, ClusterFetch, FaultMode, FaultProxy};
use proteus_obs::LatencyHistogram;
use proteus_ring::ProteusPlacement;
use proteus_store::{ShardedStore, StoreConfig};

const SERVERS: usize = 4;
const KEYS: u32 = 400;
const DEAD: usize = 1;

#[derive(Default)]
struct Phase {
    requests: u64,
    hits: u64,
    migrated: u64,
    database: u64,
    degraded: u64,
    errors: u64,
    latency: LatencyHistogram,
}

impl Phase {
    fn record(
        &mut self,
        outcome: &Result<(proteus_net::SharedBytes, ClusterFetch), proteus_net::NetError>,
        elapsed: Duration,
    ) {
        self.requests += 1;
        self.latency.record(elapsed);
        match outcome {
            Ok((_, ClusterFetch::Hit)) | Ok((_, ClusterFetch::ReplicaHit)) => self.hits += 1,
            Ok((_, ClusterFetch::Migrated)) => self.migrated += 1,
            Ok((_, ClusterFetch::Database)) | Ok((_, ClusterFetch::FalsePositive)) => {
                self.database += 1;
            }
            Ok((_, ClusterFetch::Degraded)) => self.degraded += 1,
            Err(_) => self.errors += 1,
        }
    }

    fn print(&self, name: &str) {
        let snap = self.latency.snapshot();
        let ms = |d: Duration| d.as_secs_f64() * 1000.0;
        let p = snap.percentiles().unwrap_or_default();
        println!(
            "{:<12} {:>9} {:>8} {:>9} {:>9} {:>9} {:>7} {:>8.2} {:>8.2} {:>8.2} {:>9.2}",
            name,
            self.requests,
            self.hits,
            self.migrated,
            self.database,
            self.degraded,
            self.errors,
            ms(p.p50),
            ms(p.p99),
            ms(p.p999),
            ms(snap.max().unwrap_or_default()),
        );
    }
}

fn sweep(cluster: &ClusterClient, keys: &[Vec<u8>], db: &Mutex<ShardedStore>, phase: &mut Phase) {
    for k in keys {
        let start = Instant::now();
        let outcome = cluster.fetch(k, db);
        phase.record(&outcome, start.elapsed());
    }
}

fn main() {
    let servers: Vec<CacheServer> = (0..SERVERS)
        .map(|_| CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(16 << 20)).unwrap())
        .collect();
    let proxies: Vec<FaultProxy> = servers
        .iter()
        .map(|s| FaultProxy::spawn(s.addr()).unwrap())
        .collect();
    let addrs: Vec<_> = proxies.iter().map(FaultProxy::addr).collect();
    let cluster = ClusterClient::connect_with(
        &addrs,
        Box::new(ProteusPlacement::generate(SERVERS)),
        ClientConfig::fast_failover(),
    )
    .unwrap();
    let db = Mutex::new(ShardedStore::new(StoreConfig {
        object_size: 512,
        ..StoreConfig::default()
    }));
    let keys: Vec<Vec<u8>> = (0..KEYS)
        .map(|i| format!("page:{i}").into_bytes())
        .collect();

    // Warm the whole hot set (all database fetches, installs at caches).
    for k in &keys {
        cluster.fetch(k, &db).unwrap();
    }

    println!(
        "{:<12} {:>9} {:>8} {:>9} {:>9} {:>9} {:>7} {:>8} {:>8} {:>8} {:>9}",
        "phase",
        "requests",
        "hits",
        "migrated",
        "database",
        "degraded",
        "errors",
        "p50 ms",
        "p99 ms",
        "p999 ms",
        "worst ms"
    );

    let mut healthy = Phase::default();
    sweep(&cluster, &keys, &db, &mut healthy);
    healthy.print("healthy");

    // Kill one server mid-traffic: it accepts but never answers.
    proxies[DEAD].set_mode(FaultMode::Blackhole);
    let dials_before = proxies[DEAD].connections_accepted();
    let mut dark = Phase::default();
    for _ in 0..3 {
        sweep(&cluster, &keys, &db, &mut dark);
    }
    dark.print("one dark");
    let dials = proxies[DEAD].connections_accepted() - dials_before;
    let stats = cluster.fault_stats();
    println!(
        "  dead-server dials {dials} (breaker-capped), fast fails {}, retries {}, breaker trips {}",
        stats.fast_fails, stats.retries, stats.breaker_trips
    );

    // Bring it back; wait out the breaker cooldown, then sweep again.
    proxies[DEAD].set_mode(FaultMode::Forward);
    std::thread::sleep(cluster.client(DEAD).config().breaker_cooldown + Duration::from_millis(50));
    let mut recovered = Phase::default();
    for _ in 0..2 {
        sweep(&cluster, &keys, &db, &mut recovered);
    }
    recovered.print("recovered");

    assert_eq!(
        healthy.errors + dark.errors + recovered.errors,
        0,
        "a dead cache server must never surface as a request error"
    );
    println!(
        "\nexpected: the dark phase trades hits for degraded database fetches \
         with zero errors and O(probes) dials to the dead server; after \
         recovery the breaker closes on its next probe and the hit ratio \
         climbs back as keys reinstall on demand."
    );

    drop(cluster);
    for p in proxies {
        p.stop();
    }
    for s in servers {
        s.stop();
    }
}
