//! Ablation: the hot-data TTL (drain-window length).
//!
//! DESIGN.md calls out the TTL as the knob trading migration coverage
//! (longer windows rescue more warm keys) against agility and drain
//! energy (Section IV: "long transition delay harms the system
//! agility"). This sweep runs Proteus with several TTLs over the same
//! trace and plan and reports migration volume, database traffic, the
//! worst 99.9th percentile, and cache-tier energy.
//!
//! Regenerate with: `cargo run --release -p proteus-bench --bin ablation_ttl`

use proteus_bench::{Evaluation, SIM_SEED};
use proteus_core::{ClusterSim, Scenario};
use proteus_sim::SimDuration;

fn main() {
    let eval = Evaluation::short();
    println!(
        "Proteus vs hot TTL (slot = {}, {} transitions in the plan)",
        eval.config.slot,
        eval.plan.transitions()
    );
    println!(
        "{:>8} {:>10} {:>12} {:>10} {:>14} {:>12}",
        "TTL", "migrated", "db fetches", "digest FP", "worst p99.9", "cache Wh"
    );
    for ttl_secs in [1u64, 2, 5, 10, 20] {
        let mut config = eval.config.clone();
        config.hot_ttl = SimDuration::from_secs(ttl_secs);
        let report =
            ClusterSim::new(config, Scenario::Proteus, &eval.trace, &eval.plan, SIM_SEED).run();
        println!(
            "{:>7}s {:>10} {:>12} {:>10} {:>12.0}ms {:>12.1}",
            ttl_secs,
            report.counters.migrated,
            report.counters.database_total(),
            report.counters.database_false_positive,
            report
                .worst_bucket_quantile(0.999)
                .map_or(0.0, |d| d.as_millis_f64()),
            report.cache_energy_wh(),
        );
    }
    println!(
        "\nexpected: migration volume grows with the TTL (a longer window \
         covers more re-touches) while drain energy rises slightly; past the \
         point where the Zipf head is covered, the worst percentile stops \
         improving — the paper's 'small and bounded' transition-delay goal."
    );
}
