//! Shared experiment harness for the per-figure binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation section (the `DESIGN.md` experiment index maps
//! IDs to binaries). This library holds the common setup so that every
//! figure runs the *same* trace, plan, and seeds — mirroring the
//! paper's methodology of applying "the same cluster provisioning
//! result, Wikipedia data and Wikipedia workload to all 4 different
//! scenarios".

// `deny` rather than `forbid`: the allocation-tracking module needs a
// scoped `allow` for its `GlobalAlloc` impl; everything else stays
// unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

#[allow(unsafe_code)]
pub mod alloc_track;
pub mod concurrency;

use std::io::Write;
use std::path::PathBuf;

use proteus_core::{ClusterConfig, ClusterReport, ClusterSim, ProvisioningPlan, Scenario};
use proteus_workload::Trace;

/// The shared seed for trace synthesis across all figures.
pub const TRACE_SEED: u64 = 42;
/// The shared seed for simulation randomness across all figures.
pub const SIM_SEED: u64 = 7;
/// The mean request rate (req/s) of the standard evaluation workload.
pub const MEAN_RATE: f64 = 3000.0;
/// Minimum active cache servers the planner may choose.
pub const MIN_SERVERS: usize = 4;

/// The standard evaluation setup: paper-scale configuration, one
/// shared trace, and the load-proportional plan derived from it.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Cluster configuration (paper scale, 60:1 time compression).
    pub config: ClusterConfig,
    /// The shared request trace.
    pub trace: Trace,
    /// The shared provisioning plan (Fig. 4's n(t) curve).
    pub plan: ProvisioningPlan,
}

impl Evaluation {
    /// Builds the standard evaluation setup.
    #[must_use]
    pub fn standard() -> Self {
        Self::with_rate(MEAN_RATE)
    }

    /// Builds the setup at a custom mean request rate.
    #[must_use]
    pub fn with_rate(mean_rate: f64) -> Self {
        Self::from_config(ClusterConfig::paper_scale(), mean_rate)
    }

    /// A half-day (24-slot) setup at the standard rate — used by the
    /// ablation sweeps, which run many configurations.
    #[must_use]
    pub fn short() -> Self {
        let mut config = ClusterConfig::paper_scale();
        config.slots = 24;
        Self::from_config(config, MEAN_RATE)
    }

    /// Builds the trace and plan for an explicit configuration.
    #[must_use]
    pub fn from_config(config: ClusterConfig, mean_rate: f64) -> Self {
        let trace = Trace::synthesize(&config.trace_config(mean_rate), TRACE_SEED);
        let plan = ProvisioningPlan::load_proportional(
            &trace.requests_per_slot(config.slot, config.slots),
            config.cache_servers,
            MIN_SERVERS,
        );
        Evaluation {
            config,
            trace,
            plan,
        }
    }

    /// Runs one scenario over the shared workload.
    #[must_use]
    pub fn run(&self, scenario: Scenario) -> ClusterReport {
        ClusterSim::new(
            self.config.clone(),
            scenario,
            &self.trace,
            &self.plan,
            SIM_SEED,
        )
        .run()
    }

    /// Runs all four Table II scenarios.
    #[must_use]
    pub fn run_all(&self) -> Vec<(Scenario, ClusterReport)> {
        Scenario::all()
            .into_iter()
            .map(|sc| {
                eprintln!("  running scenario {} ...", sc.name());
                (sc, self.run(sc))
            })
            .collect()
    }

    /// Per-slot request volumes of the shared trace.
    #[must_use]
    pub fn volumes(&self) -> Vec<u64> {
        self.trace
            .requests_per_slot(self.config.slot, self.config.slots)
    }
}

/// Renders a row-per-slot table column for a report series.
#[must_use]
pub fn fmt_opt_ms(value: Option<proteus_sim::SimDuration>) -> String {
    value.map_or_else(
        || "      -".to_string(),
        |d| format!("{:7.1}", d.as_millis_f64()),
    )
}

/// Renders an optional ratio.
#[must_use]
pub fn fmt_opt_ratio(value: Option<f64>) -> String {
    value.map_or_else(|| "     -".to_string(), |r| format!("{r:6.3}"))
}

/// Writes an experiment's data as CSV under `target/experiments/`,
/// returning the file path. Figure binaries call this so the printed
/// tables can also be plotted externally.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv<R, F>(name: &str, header: &[&str], rows: R) -> std::io::Result<PathBuf>
where
    R: IntoIterator<Item = Vec<F>>,
    F: std::fmt::Display,
{
    let dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut file = std::io::BufWriter::new(std::fs::File::create(&path)?);
    writeln!(file, "{}", header.join(","))?;
    for row in rows {
        let cells: Vec<String> = row.into_iter().map(|c| c.to_string()).collect();
        writeln!(file, "{}", cells.join(","))?;
    }
    file.flush()?;
    Ok(path)
}

/// A crude ASCII sparkline over a series (log scale for latencies).
#[must_use]
pub fn sparkline(values: &[f64], log: bool) -> String {
    const GLYPHS: [char; 8] = ['.', ':', '-', '=', '+', '*', '#', '@'];
    let transform = |v: f64| if log { (v.max(1e-9)).ln() } else { v };
    let lo = values
        .iter()
        .copied()
        .map(transform)
        .fold(f64::INFINITY, f64::min);
    let hi = values
        .iter()
        .copied()
        .map(transform)
        .fold(f64::NEG_INFINITY, f64::max);
    values
        .iter()
        .map(|&v| {
            let t = transform(v);
            let idx = if hi > lo {
                (((t - lo) / (hi - lo)) * (GLYPHS.len() - 1) as f64).round() as usize
            } else {
                0
            };
            GLYPHS[idx]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_setup_is_consistent() {
        let eval = Evaluation::with_rate(100.0);
        assert_eq!(eval.plan.slots(), eval.config.slots);
        assert_eq!(eval.volumes().len(), eval.config.slots);
        assert!(!eval.trace.is_empty());
    }

    #[test]
    fn sparkline_has_one_glyph_per_value() {
        let s = sparkline(&[1.0, 10.0, 100.0], true);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('.'));
        assert!(s.ends_with('@'));
    }

    #[test]
    fn write_csv_roundtrips() {
        let path = write_csv(
            "unit-test",
            &["a", "b"],
            vec![vec![1.0, 2.0], vec![3.5, 4.25]],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n3.5,4.25\n");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn formatters_handle_missing_values() {
        assert!(fmt_opt_ms(None).contains('-'));
        assert!(fmt_opt_ratio(None).contains('-'));
        assert_eq!(fmt_opt_ratio(Some(0.5)), " 0.500");
    }
}
