//! A counting global allocator for allocations-per-operation
//! accounting.
//!
//! The zero-copy work (shared value buffers, borrow-based parsing)
//! claims "no allocations on the warmed hot path" — a claim throughput
//! numbers alone cannot verify, because an allocator can be fast right
//! up until it fragments or contends. This module lets a binary or
//! test *count*: register the allocator once and measure deltas around
//! a workload.
//!
//! ```ignore
//! use proteus_bench::alloc_track::{measure, CountingAlloc};
//!
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc;
//!
//! let (value, delta) = measure(|| cache.get(b"warm-key"));
//! assert_eq!(delta.allocations, 0);
//! ```
//!
//! Counting costs two relaxed atomic adds per allocation, which is
//! negligible next to the allocation itself; deallocations are not
//! counted (the hot-path claim is about acquiring memory, and frees of
//! shared buffers happen on whichever thread drops the last reference).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// The system allocator plus two relaxed counters. Register with
/// `#[global_allocator]` in the binary that wants accounting; code
/// linked into a binary that does *not* register it simply reads
/// counters frozen at zero (see [`is_counting`]).
pub struct CountingAlloc;

// SAFETY: every method forwards verbatim to `System`, which upholds
// the `GlobalAlloc` contract; the counter updates have no effect on
// the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow is a fresh acquisition of `new_size` bytes as far as
        // hot-path accounting is concerned.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// Allocation counters at one instant (or a delta between two).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocSnapshot {
    /// Heap acquisitions (alloc, alloc_zeroed, realloc).
    pub allocations: u64,
    /// Bytes requested across those acquisitions.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// Counter movement since `earlier`.
    #[must_use]
    pub fn since(&self, earlier: AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocations: self.allocations - earlier.allocations,
            bytes: self.bytes - earlier.bytes,
        }
    }
}

/// The current counter values.
#[must_use]
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocations: ALLOCATIONS.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
    }
}

/// Runs `f` and returns its result together with the allocations it
/// (and any concurrent threads — measure single-threaded for exact
/// numbers) performed.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, AllocSnapshot) {
    let before = snapshot();
    let value = f();
    (value, snapshot().since(before))
}

/// Whether the counting allocator is actually registered in this
/// binary. Guards against silently-green gates: a test that forgets
/// `#[global_allocator]` would otherwise see zero allocations
/// everywhere and pass vacuously.
#[must_use]
pub fn is_counting() -> bool {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    std::hint::black_box(Box::new(0u8));
    ALLOCATIONS.load(Ordering::Relaxed) != before
}
