//! Shared harness for the engine concurrency benchmarks.
//!
//! Two contestants behind one trait: the single-threaded
//! [`CacheEngine`] behind one global mutex (the old server design) and
//! the lock-striped [`ShardedEngine`]. `benches/concurrent.rs` and the
//! `throughput_scaling` binary both drive them through
//! [`run_mixed`], so the criterion numbers and the sweep table come
//! from the identical workload.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use proteus_cache::{CacheConfig, CacheEngine, ShardedEngine, SharedBytes};
use proteus_obs::LatencyHistogram;
use proteus_sim::SimTime;

/// A cache engine that can be driven from many threads at once.
pub trait ConcurrentCache: Send + Sync + 'static {
    /// Short label for reports.
    fn label(&self) -> &'static str;
    /// Looks up `key`, refreshing recency. Returns the engine's shared
    /// buffer — for the sharded engine a refcount bump, never a copy.
    fn get(&self, key: &[u8]) -> Option<SharedBytes>;
    /// Inserts or replaces `key`.
    fn put(&self, key: &[u8], value: Vec<u8>);
    /// Takes a full digest snapshot, returning its set-bit count
    /// (forces the whole digest to be built).
    fn snapshot_weight(&self) -> u64;
}

/// The baseline: one [`CacheEngine`] behind one global mutex — every
/// operation, and the whole digest snapshot, serializes here.
#[derive(Debug)]
pub struct SingleMutexCache {
    engine: Mutex<CacheEngine>,
}

impl SingleMutexCache {
    /// Creates the baseline engine.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        SingleMutexCache {
            engine: Mutex::new(CacheEngine::new(config)),
        }
    }
}

impl ConcurrentCache for SingleMutexCache {
    fn label(&self) -> &'static str {
        "single-mutex"
    }

    fn get(&self, key: &[u8]) -> Option<SharedBytes> {
        self.engine.lock().get_shared(key, SimTime::ZERO)
    }

    fn put(&self, key: &[u8], value: Vec<u8>) {
        self.engine.lock().put(key, value, SimTime::ZERO);
    }

    fn snapshot_weight(&self) -> u64 {
        self.engine.lock().digest_snapshot().set_bits() as u64
    }
}

/// The contender: a lock-striped [`ShardedEngine`].
#[derive(Debug)]
pub struct ShardedCache {
    engine: ShardedEngine,
}

impl ShardedCache {
    /// Creates the sharded engine (shard count from `config.shards`).
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        ShardedCache {
            engine: ShardedEngine::new(config),
        }
    }
}

impl ConcurrentCache for ShardedCache {
    fn label(&self) -> &'static str {
        "sharded"
    }

    fn get(&self, key: &[u8]) -> Option<SharedBytes> {
        self.engine.get(key, SimTime::ZERO)
    }

    fn put(&self, key: &[u8], value: Vec<u8>) {
        self.engine.put(key, value, SimTime::ZERO);
    }

    fn snapshot_weight(&self) -> u64 {
        self.engine.digest_snapshot().set_bits() as u64
    }
}

/// Workload knobs for [`run_mixed`].
#[derive(Debug, Clone, Copy)]
pub struct MixedWorkload {
    /// Client threads hammering the engine.
    pub threads: usize,
    /// Operations per thread.
    pub ops_per_thread: u64,
    /// Keys are drawn uniformly from `0..key_space`.
    pub key_space: u64,
    /// Value payload size in bytes.
    pub value_len: usize,
    /// Writes per 100 operations (the rest are reads).
    pub write_percent: u64,
    /// Run a concurrent thread looping full digest snapshots for the
    /// duration of the measurement (the paper's `get SET_BLOOM_FILTER`
    /// under load).
    pub snapshot_loop: bool,
}

impl MixedWorkload {
    /// A 90 % read / 10 % write mix at the given thread count.
    #[must_use]
    pub fn read_heavy(threads: usize, ops_per_thread: u64) -> Self {
        MixedWorkload {
            threads,
            ops_per_thread,
            key_space: 16_384,
            value_len: 1024,
            write_percent: 10,
            snapshot_loop: false,
        }
    }

    /// Enables the concurrent snapshot loop (builder style).
    #[must_use]
    pub fn with_snapshot_loop(mut self) -> Self {
        self.snapshot_loop = true;
        self
    }
}

/// What one [`run_mixed`] measured.
///
/// The percentiles come from one [`LatencyHistogram`] shared by every
/// worker thread — the telemetry crate's lock-free multi-producer
/// path, not a per-thread `Vec` merged and sorted afterwards — so the
/// bench measures with the same instrument the live server exports.
#[derive(Debug, Clone, Copy)]
pub struct RunReport {
    /// Total operations completed across all threads.
    pub ops: u64,
    /// Wall-clock of the slowest thread.
    pub elapsed: Duration,
    /// Median single-operation latency (sampled).
    pub p50: Duration,
    /// 99th-percentile single-operation latency (sampled).
    pub p99: Duration,
    /// 99.9th-percentile single-operation latency (sampled).
    pub p999: Duration,
    /// Digest snapshots completed by the snapshot loop (0 when the
    /// loop is disabled).
    pub snapshots: u64,
}

impl RunReport {
    /// Aggregate throughput in operations per second.
    #[must_use]
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// xorshift64*: tiny deterministic per-thread RNG so the workload
/// needs no external randomness.
fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Fills `cache` so reads mostly hit: one value per key in
/// `0..key_space`.
pub fn prepopulate<C: ConcurrentCache>(cache: &C, key_space: u64, value_len: usize) {
    for i in 0..key_space {
        cache.put(&i.to_le_bytes(), vec![0u8; value_len]);
    }
}

/// Drives `cache` with `workload` and measures throughput and sampled
/// latency percentiles. All threads start together behind a barrier;
/// every 32nd operation is timed individually and recorded into one
/// shared lock-free [`LatencyHistogram`].
pub fn run_mixed<C: ConcurrentCache>(cache: &Arc<C>, workload: MixedWorkload) -> RunReport {
    assert!(workload.threads > 0, "need at least one thread");
    let barrier = Arc::new(Barrier::new(workload.threads + 1));
    let stop_snapshots = Arc::new(AtomicBool::new(false));
    let latency = Arc::new(LatencyHistogram::new());

    let snapshot_thread = workload.snapshot_loop.then(|| {
        let cache = Arc::clone(cache);
        let stop = Arc::clone(&stop_snapshots);
        std::thread::spawn(move || {
            let mut taken = 0u64;
            while !stop.load(Ordering::Relaxed) {
                std::hint::black_box(cache.snapshot_weight());
                taken += 1;
            }
            taken
        })
    });

    let workers: Vec<_> = (0..workload.threads)
        .map(|t| {
            let cache = Arc::clone(cache);
            let barrier = Arc::clone(&barrier);
            let latency = Arc::clone(&latency);
            std::thread::spawn(move || {
                let mut rng = 0x9E37_79B9_7F4A_7C15u64 ^ (t as u64 + 1);
                barrier.wait();
                let started = Instant::now();
                for op in 0..workload.ops_per_thread {
                    let r = next_rand(&mut rng);
                    let key = (r % workload.key_space).to_le_bytes();
                    let is_write = r % 100 < workload.write_percent;
                    let sample = op % 32 == 0;
                    let op_start = sample.then(Instant::now);
                    if is_write {
                        cache.put(&key, vec![0u8; workload.value_len]);
                    } else {
                        std::hint::black_box(cache.get(&key));
                    }
                    if let Some(s) = op_start {
                        latency.record(s.elapsed());
                    }
                }
                started.elapsed()
            })
        })
        .collect();

    barrier.wait();
    let mut elapsed = Duration::ZERO;
    for w in workers {
        elapsed = elapsed.max(w.join().expect("worker panicked"));
    }
    stop_snapshots.store(true, Ordering::Relaxed);
    let snapshots = snapshot_thread.map_or(0, |t| t.join().expect("snapshot thread panicked"));

    let p = latency.snapshot().percentiles().unwrap_or_default();
    RunReport {
        ops: workload.ops_per_thread * workload.threads as u64,
        elapsed,
        p50: p.p50,
        p99: p.p99,
        p999: p.p999,
        snapshots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> CacheConfig {
        CacheConfig::with_capacity(64 << 20)
    }

    #[test]
    fn both_engines_complete_the_mixed_workload() {
        let workload = MixedWorkload {
            threads: 4,
            ops_per_thread: 2_000,
            key_space: 512,
            value_len: 64,
            write_percent: 10,
            snapshot_loop: false,
        };
        let single = Arc::new(SingleMutexCache::new(config()));
        prepopulate(&*single, workload.key_space, workload.value_len);
        let r1 = run_mixed(&single, workload);
        assert_eq!(r1.ops, 8_000);
        assert!(r1.ops_per_sec() > 0.0);

        let sharded = Arc::new(ShardedCache::new(config()));
        prepopulate(&*sharded, workload.key_space, workload.value_len);
        let r2 = run_mixed(&sharded, workload);
        assert_eq!(r2.ops, 8_000);
        assert!(r2.p99 > Duration::ZERO);
    }

    #[test]
    fn snapshot_loop_takes_snapshots_while_serving() {
        let workload = MixedWorkload::read_heavy(2, 2_000).with_snapshot_loop();
        let sharded = Arc::new(ShardedCache::new(config()));
        prepopulate(&*sharded, workload.key_space, workload.value_len);
        let report = run_mixed(&sharded, workload);
        assert!(report.snapshots > 0, "snapshot loop never completed");
    }

    #[test]
    fn workload_rng_is_deterministic_per_thread() {
        let mut a = 0x9E37_79B9_7F4A_7C15u64 ^ 1;
        let mut b = 0x9E37_79B9_7F4A_7C15u64 ^ 1;
        for _ in 0..100 {
            assert_eq!(next_rand(&mut a), next_rand(&mut b));
        }
    }
}
