//! Property-based tests for the placement algorithms.

use proptest::prelude::*;
use proteus_ring::{
    analysis, hash::splitmix64, ModuloStrategy, PlacementStrategy, ProteusPlacement, RandomRing,
    Ratio, ReplicatedPlacement, ServerId,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithm 1's Balance Condition, exactly, for every prefix of
    /// every cluster size up to 24.
    #[test]
    fn proteus_balance_is_exact_for_all_prefixes(total in 1usize..24) {
        let p = ProteusPlacement::generate(total);
        for n in 1..=total {
            let shares = p.ownership_shares(n);
            for s in &shares {
                prop_assert_eq!(*s, Ratio::new(1, n as i128));
            }
        }
    }

    /// Theorem 1: the generated placement always uses exactly the
    /// lower-bound number of virtual nodes.
    #[test]
    fn proteus_vnode_count_is_lower_bound(total in 1usize..40) {
        let p = ProteusPlacement::generate(total);
        prop_assert_eq!(p.virtual_node_count(), total * (total - 1) / 2 + 1);
    }

    /// Lookups are consistent: the same key and active count always map
    /// to an *active* server, and the mapping is stable under repeated
    /// queries.
    #[test]
    fn proteus_lookup_is_stable_and_active(
        total in 1usize..16,
        keys in prop::collection::vec(any::<u64>(), 1..50),
    ) {
        let p = ProteusPlacement::generate(total);
        for n in 1..=total {
            for &k in &keys {
                let a = p.server_for(k, n);
                prop_assert!(a.index() < n);
                prop_assert_eq!(a, p.server_for(k, n));
            }
        }
    }

    /// Minimal migration for a single-step transition: only the keys of
    /// the deactivated server move.
    #[test]
    fn proteus_single_step_moves_only_departing_keys(
        total in 2usize..16,
        keys in prop::collection::vec(any::<u64>(), 50..200),
    ) {
        let p = ProteusPlacement::generate(total);
        for n in 2..=total {
            for &k in &keys {
                let before = p.server_for(k, n);
                let after = p.server_for(k, n - 1);
                if before != after {
                    prop_assert_eq!(before, ServerId::new(n as u32 - 1));
                }
            }
        }
    }

    /// Monotone transitions: a key that survives a scale-down on server
    /// s stays on s for every intermediate step (no ping-ponging).
    #[test]
    fn proteus_scale_down_never_ping_pongs(
        total in 3usize..14,
        key in any::<u64>(),
    ) {
        let p = ProteusPlacement::generate(total);
        let mut owner = p.server_for(key, total);
        for n in (1..total).rev() {
            let next = p.server_for(key, n);
            if next != owner {
                // The key may only move because its owner shut down.
                prop_assert_eq!(owner.index(), n, "owner {} shut down at n={}", owner, n);
            }
            owner = next;
        }
    }

    /// Multi-step transitions never remap more than the per-step sum,
    /// and at least the single-step minimum.
    #[test]
    fn proteus_multi_step_remap_is_bounded(
        total in 4usize..14,
        delta in 1usize..4,
    ) {
        let p = ProteusPlacement::generate(total);
        let from = total;
        let to = total - delta.min(total - 1);
        let f = analysis::remap_fraction(&p, from, to, 8_000, 99);
        let bound = analysis::minimal_remap_fraction(from, to);
        prop_assert!((f - bound).abs() < 0.03, "remap {} vs bound {}", f, bound);
    }

    /// Modulo and consistent-hashing baselines always return an active
    /// server too (routing safety holds for every scenario).
    #[test]
    fn baselines_return_active_servers(
        total in 1usize..12,
        key in any::<u64>(),
    ) {
        let m = ModuloStrategy::new(total);
        let r = RandomRing::new(total, 4, 0);
        for n in 1..=total {
            prop_assert!(m.server_for(key, n).index() < n);
            prop_assert!(r.server_for(key, n).index() < n);
        }
    }

    /// Replicated placement always yields one server per ring, all
    /// active, and deduplication is sound.
    #[test]
    fn replication_yields_active_replicas(
        total in 2usize..10,
        replicas in 1usize..4,
        key in any::<u64>(),
    ) {
        let rp = ReplicatedPlacement::new(total, replicas, 3);
        for n in 1..=total {
            let servers = rp.servers_for(&key.to_le_bytes(), n);
            prop_assert_eq!(servers.len(), replicas);
            prop_assert!(servers.iter().all(|s| s.index() < n));
            let distinct = rp.distinct_servers_for(&key.to_le_bytes(), n);
            prop_assert!(distinct.len() <= replicas);
            prop_assert!(!distinct.is_empty());
        }
    }

    /// Ratio arithmetic: (a/b + c/d) - c/d == a/b over a broad range.
    #[test]
    fn ratio_add_sub_roundtrip(
        a in 0i128..1000, b in 1i128..1000,
        c in 0i128..1000, d in 1i128..1000,
    ) {
        let x = Ratio::new(a, b);
        let y = Ratio::new(c, d);
        prop_assert_eq!((x + y) - y, x);
        prop_assert!(x + y >= x);
    }

    /// Ring-position scaling is monotone in the rational value.
    #[test]
    fn ring_position_is_monotone(
        a in 0i128..10_000, c in 0i128..10_000, d in 1i128..10_000,
    ) {
        let b = d + a.max(c) + 1; // ensure both < 1
        let x = Ratio::new(a.min(c), b);
        let y = Ratio::new(a.max(c), b);
        prop_assert!(x.to_ring_position() <= y.to_ring_position());
    }

    /// The O(1) flat successor index routes every `(n, key_hash)` pair
    /// exactly like the binary search it replaces — including hashes
    /// drawn adversarially near the vnode positions, where the
    /// successor flips.
    #[test]
    fn flat_lookup_agrees_with_binary_search(
        total in 1usize..24,
        keys in prop::collection::vec(any::<u64>(), 1..80),
        jitter in prop::collection::vec(-2i64..=2, 1..20),
    ) {
        let p = ProteusPlacement::generate(total);
        for n in 1..=total {
            for &k in &keys {
                prop_assert_eq!(p.server_for(k, n), p.server_for_bsearch(k, n));
            }
            // Perturbed vnode positions: boundaries of the successor
            // relation, where an off-by-one in the flat index would
            // first show.
            for (&(pos, _), &j) in p.lookup_table(n).iter().zip(jitter.iter().cycle()) {
                let k = pos.wrapping_add_signed(j);
                prop_assert_eq!(p.server_for(k, n), p.server_for_bsearch(k, n));
            }
        }
    }
}

/// Deterministic cross-check of the worked example in the paper's
/// Fig. 2 discussion: the final-successor sets for N = 6.
#[test]
fn fig2_final_successor_sets() {
    let p = ProteusPlacement::generate(6);
    for i in 2..=6u32 {
        let ps = analysis::final_successors(&p, ServerId::new(i - 1));
        assert_eq!(ps.len() as u32, i - 1, "|Ps_{i}|");
    }
}

/// Balance comparison across all four Table II strategies at the
/// paper's cluster size (10 cache servers): Proteus and modulo are
/// near-perfect, random consistent hashing is visibly worse.
#[test]
fn table2_strategy_balance_ordering() {
    let samples = 200_000;
    let p = ProteusPlacement::generate(10);
    let m = ModuloStrategy::new(10);
    let logn = RandomRing::with_log_vnodes(10, 0);
    let quad = RandomRing::with_quadratic_vnodes(10, 0);
    for n in [4usize, 7, 10] {
        let r_p = analysis::balance_ratio(&p, n, samples, 5);
        let r_m = analysis::balance_ratio(&m, n, samples, 5);
        let r_l = analysis::balance_ratio(&logn, n, samples, 5);
        let r_q = analysis::balance_ratio(&quad, n, samples, 5);
        assert!(r_p > 0.97, "n={n} proteus {r_p}");
        assert!(r_m > 0.97, "n={n} modulo {r_m}");
        assert!(r_l < r_p, "n={n} log-consistent {r_l}");
        assert!(r_q < r_p, "n={n} quad-consistent {r_q}");
    }
}

/// Keys drawn from a realistic (hashed-id) population also balance.
#[test]
fn hashed_page_ids_balance_on_proteus() {
    let p = ProteusPlacement::generate(10);
    let mut counts = [0u64; 10];
    for page in 0..500_000u64 {
        let key = splitmix64(page);
        counts[p.server_for(key, 10).index()] += 1;
    }
    let min = *counts.iter().min().unwrap() as f64;
    let max = *counts.iter().max().unwrap() as f64;
    assert!(min / max > 0.98, "min/max {}", min / max);
}
