//! Analysis helpers: migration fractions, balance ratios, and the
//! final-successor sets of Section III-B.

use std::collections::BTreeSet;

use crate::hash::splitmix64;
use crate::placement::ProteusPlacement;
use crate::server::ServerId;
use crate::strategy::PlacementStrategy;

/// Estimates the fraction of keys whose server changes when the active
/// count goes from `n_before` to `n_after`, by sampling `samples`
/// uniformly hashed keys derived from `seed`.
///
/// The paper's minimal-migration objective (Section II) bounds this by
/// `|n_after - n_before| / max(n_before, n_after)` for Proteus; for the
/// modulo baseline it approaches 1.
///
/// # Panics
///
/// Panics if either count is zero, exceeds the strategy's maximum, or
/// `samples == 0`.
///
/// # Example
///
/// ```
/// use proteus_ring::{analysis, ProteusPlacement};
/// let p = ProteusPlacement::generate(10);
/// let f = analysis::remap_fraction(&p, 10, 9, 20_000, 7);
/// assert!((f - 0.1).abs() < 0.01);
/// ```
#[must_use]
pub fn remap_fraction<S: PlacementStrategy + ?Sized>(
    strategy: &S,
    n_before: usize,
    n_after: usize,
    samples: u64,
    seed: u64,
) -> f64 {
    assert!(samples > 0, "need at least one sample");
    let mut moved = 0u64;
    for k in 0..samples {
        let key = splitmix64(k ^ splitmix64(seed));
        if strategy.server_for(key, n_before) != strategy.server_for(key, n_after) {
            moved += 1;
        }
    }
    moved as f64 / samples as f64
}

/// The theoretical minimum remap fraction for a transition
/// `n_before → n_after` (Section II's objective):
/// `|n_after - n_before| / max(n_before, n_after)`.
#[must_use]
pub fn minimal_remap_fraction(n_before: usize, n_after: usize) -> f64 {
    let hi = n_before.max(n_after) as f64;
    ((n_before as i64 - n_after as i64).unsigned_abs()) as f64 / hi
}

/// Measures the paper's Fig. 5 balance metric — `min load / max load`
/// over active servers — for `samples` uniformly hashed keys.
///
/// # Panics
///
/// Panics if `active == 0`, exceeds the strategy's maximum, or
/// `samples == 0`.
#[must_use]
pub fn balance_ratio<S: PlacementStrategy + ?Sized>(
    strategy: &S,
    active: usize,
    samples: u64,
    seed: u64,
) -> f64 {
    assert!(samples > 0, "need at least one sample");
    let mut counts = vec![0u64; active];
    for k in 0..samples {
        let key = splitmix64(k ^ splitmix64(seed.wrapping_add(1)));
        counts[strategy.server_for(key, active).index()] += 1;
    }
    let min = *counts.iter().min().expect("non-empty") as f64;
    let max = *counts.iter().max().expect("non-empty") as f64;
    if max == 0.0 {
        1.0
    } else {
        min / max
    }
}

/// Computes `Ps_i`, the set of *final successor* servers of `s_i`
/// (Section III-B): for each virtual node of `s_i`, the server owning
/// the next virtual node clockwise when exactly `i - 1` servers are on.
///
/// The pseudo Balance Condition requires `Ps_i ⊇ {s_1 .. s_{i-1}}`;
/// Algorithm 1 achieves it with equality (Fig. 2's example:
/// `Ps_6 = {1,2,3,4,5}` … `Ps_2 = {1}`).
///
/// Returns the empty set for `s_1` (ordinal 1), which has no
/// predecessors.
///
/// # Panics
///
/// Panics if `server` is outside the placement.
///
/// # Example
///
/// ```
/// use proteus_ring::{analysis, ProteusPlacement, ServerId};
/// let p = ProteusPlacement::generate(6);
/// let ps6 = analysis::final_successors(&p, ServerId::new(5));
/// let expected: Vec<u32> = (0..5).collect();
/// assert_eq!(ps6.iter().map(|s| s.index() as u32).collect::<Vec<_>>(), expected);
/// ```
#[must_use]
pub fn final_successors(placement: &ProteusPlacement, server: ServerId) -> BTreeSet<ServerId> {
    assert!(
        server.index() < placement.max_servers(),
        "server {server} outside placement of {} servers",
        placement.max_servers()
    );
    let i = server.index() + 1; // 1-based ordinal
    if i == 1 {
        return BTreeSet::new();
    }
    // Ring with i-1 servers on (s_i itself already powered down).
    let table = placement.lookup_table(i - 1);
    let mut out = BTreeSet::new();
    for vnode in placement.virtual_nodes_of(server) {
        let pos = vnode.position().to_ring_position();
        // First active node strictly clockwise of this vnode.
        let succ = match table.binary_search_by(|&(p, _)| p.cmp(&pos)) {
            Ok(idx) | Err(idx) if idx < table.len() && table[idx].0 == pos => {
                // Position collision with an active node cannot happen:
                // Algorithm 1 end-positions are distinct. Fall through
                // to the next entry defensively.
                table[(idx + 1) % table.len()].1
            }
            Ok(idx) => table[idx].1,
            Err(idx) if idx < table.len() => table[idx].1,
            Err(_) => table[0].1,
        };
        out.insert(succ);
    }
    out
}

/// Estimates the key-flow matrix of a transition `n_before → n_after`:
/// entry `[from][to]` is the fraction of the key space that moves from
/// server `from` (old mapping) to server `to` (new mapping), sampled
/// over `samples` uniformly hashed keys. Diagonal entries (keys that
/// stay put) are zero.
///
/// For Algorithm 1 on a single-step scale-down, the Balance Condition
/// predicts row `n_before - 1` to hold `1/(n(n-1))` in every column —
/// the departing server's load splits evenly over the survivors.
///
/// # Panics
///
/// Panics if either count is zero, exceeds the strategy's maximum, or
/// `samples == 0`.
#[must_use]
pub fn migration_matrix<S: PlacementStrategy + ?Sized>(
    strategy: &S,
    n_before: usize,
    n_after: usize,
    samples: u64,
    seed: u64,
) -> Vec<Vec<f64>> {
    assert!(samples > 0, "need at least one sample");
    let rows = n_before.max(n_after);
    let mut matrix = vec![vec![0.0f64; rows]; rows];
    for k in 0..samples {
        let key = splitmix64(k ^ splitmix64(seed.wrapping_add(7)));
        let from = strategy.server_for(key, n_before).index();
        let to = strategy.server_for(key, n_after).index();
        if from != to {
            matrix[from][to] += 1.0;
        }
    }
    for row in &mut matrix {
        for cell in row.iter_mut() {
            *cell /= samples as f64;
        }
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModuloStrategy, RandomRing};

    #[test]
    fn proteus_remap_hits_the_lower_bound() {
        let p = ProteusPlacement::generate(10);
        for (a, b) in [(10, 9), (9, 10), (10, 7), (5, 8), (3, 3)] {
            let measured = remap_fraction(&p, a, b, 40_000, 1);
            let bound = minimal_remap_fraction(a, b);
            assert!(
                (measured - bound).abs() < 0.012,
                "{a}->{b}: measured {measured}, bound {bound}"
            );
        }
    }

    #[test]
    fn modulo_remap_is_catastrophic() {
        let m = ModuloStrategy::new(10);
        let f = remap_fraction(&m, 10, 9, 30_000, 2);
        assert!(f > 0.85, "modulo should remap ~9/10, got {f}");
    }

    #[test]
    fn consistent_hashing_is_minimal_for_single_steps() {
        // Random-vnode consistent hashing also achieves minimal
        // migration for n -> n-1; its weakness is balance, not movement.
        let ring = RandomRing::new(10, 8, 0);
        let f = remap_fraction(&ring, 10, 9, 30_000, 3);
        let owned = balance_ratio(&ring, 10, 30_000, 3);
        assert!(f < 0.30, "remap {f}");
        assert!(owned < 1.0);
    }

    #[test]
    fn balance_ratio_ordering_matches_fig5() {
        let p = ProteusPlacement::generate(10);
        let quad = RandomRing::with_quadratic_vnodes(10, 0);
        let logn = RandomRing::with_log_vnodes(10, 0);
        let m = ModuloStrategy::new(10);
        let samples = 300_000;
        let r_p = balance_ratio(&p, 10, samples, 4);
        let r_m = balance_ratio(&m, 10, samples, 4);
        let r_q = balance_ratio(&quad, 10, samples, 4);
        let r_l = balance_ratio(&logn, 10, samples, 4);
        assert!(r_p > 0.97, "proteus {r_p}");
        assert!(r_m > 0.97, "modulo {r_m}");
        assert!(r_q < r_p, "quadratic consistent {r_q} vs proteus {r_p}");
        assert!(r_l < r_q + 0.05, "log-consistent {r_l} vs quadratic {r_q}");
    }

    #[test]
    fn final_successor_sets_match_fig2() {
        // Fig. 2: Ps_i = {s_1, ..., s_{i-1}} for the 6-server example.
        let p = ProteusPlacement::generate(6);
        for i in 1..=6u32 {
            let ps = final_successors(&p, ServerId::new(i - 1));
            let expect: BTreeSet<ServerId> = (0..i - 1).map(ServerId::new).collect();
            assert_eq!(ps, expect, "Ps_{i}");
        }
    }

    #[test]
    fn final_successors_cover_predecessors_for_larger_n() {
        // The pseudo Balance Condition for a larger cluster.
        let p = ProteusPlacement::generate(16);
        for i in 2..=16u32 {
            let ps = final_successors(&p, ServerId::new(i - 1));
            assert_eq!(ps.len(), (i - 1) as usize, "|Ps_{i}|");
            for j in 0..i - 1 {
                assert!(
                    ps.contains(&ServerId::new(j)),
                    "s{} missing from Ps_{i}",
                    j + 1
                );
            }
        }
    }

    #[test]
    fn migration_matrix_scale_down_matches_balance_condition() {
        // 10 → 9: server 10's 1/10 share splits into 1/90 per survivor.
        let p = ProteusPlacement::generate(10);
        let m = migration_matrix(&p, 10, 9, 200_000, 1);
        for (from, row) in m.iter().enumerate() {
            for (to, &share) in row.iter().enumerate() {
                if from == 9 && to < 9 {
                    let expect = 1.0 / 90.0;
                    assert!(
                        (share - expect).abs() < 0.002,
                        "flow {from}->{to}: {share} vs {expect}"
                    );
                } else {
                    assert!(share < 0.001, "unexpected flow {from}->{to}: {share}");
                }
            }
        }
    }

    #[test]
    fn migration_matrix_scale_up_gathers_evenly() {
        // 9 → 10: the new server takes 1/90 from each incumbent.
        let p = ProteusPlacement::generate(10);
        let m = migration_matrix(&p, 9, 10, 200_000, 2);
        for (from, row) in m.iter().enumerate().take(9) {
            let to_new = row[9];
            assert!(
                (to_new - 1.0 / 90.0).abs() < 0.002,
                "flow {from}->10: {to_new}"
            );
        }
        let total: f64 = m.iter().flatten().sum();
        assert!((total - 0.1).abs() < 0.01, "total moved {total}");
    }

    #[test]
    fn minimal_remap_fraction_formula() {
        assert_eq!(minimal_remap_fraction(10, 9), 0.1);
        assert_eq!(minimal_remap_fraction(9, 10), 0.1);
        assert_eq!(minimal_remap_fraction(4, 4), 0.0);
        assert_eq!(minimal_remap_fraction(10, 5), 0.5);
    }
}
