//! Fault-tolerant replication over multiple hash rings
//! (Section III-E).
//!
//! Proteus extends to `r` replicas by running `r` consistent-hashing
//! rings with `r` different hash functions, all sharing the *same*
//! virtual-node placement. A key is stored on the server owning it in
//! each ring; Eq. 3 gives the probability that all `r` copies land on
//! distinct servers.

use std::fmt;

use crate::hash::KeyHasher;
use crate::placement::ProteusPlacement;
use crate::server::ServerId;
use crate::strategy::PlacementStrategy;

/// A Proteus placement replicated across `r` hash rings.
///
/// # Example
///
/// ```
/// use proteus_ring::ReplicatedPlacement;
///
/// let rp = ReplicatedPlacement::new(10, 3, 42);
/// let servers = rp.servers_for(b"Main_Page", 10);
/// assert_eq!(servers.len(), 3);
/// // Eq. 3: with n = 10, r = 3 the no-conflict probability is
/// // (10/10)(9/10)(8/10) = 0.72.
/// let p = ReplicatedPlacement::no_conflict_probability(3, 10);
/// assert!((p - 0.72).abs() < 1e-12);
/// ```
#[derive(Clone)]
pub struct ReplicatedPlacement {
    placement: ProteusPlacement,
    hashers: Vec<KeyHasher>,
}

impl ReplicatedPlacement {
    /// Creates a placement for `servers` servers with `replicas` rings
    /// whose hash functions derive from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0` or the cluster size is invalid for
    /// [`ProteusPlacement::generate`].
    #[must_use]
    pub fn new(servers: usize, replicas: usize, seed: u64) -> Self {
        assert!(replicas > 0, "need at least one replica");
        let placement = ProteusPlacement::generate(servers);
        let hashers = (0..replicas)
            .map(|i| KeyHasher::new(seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9) | 1))
            .collect();
        ReplicatedPlacement { placement, hashers }
    }

    /// Number of replicas (`r`).
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.hashers.len()
    }

    /// The shared underlying placement.
    #[must_use]
    pub fn placement(&self) -> &ProteusPlacement {
        &self.placement
    }

    /// The servers holding each replica of `key` when `active` servers
    /// are on — one entry per ring, in ring order. Entries may repeat
    /// (a hash conflict, Section III-E); use
    /// [`distinct_servers_for`](Self::distinct_servers_for) for the
    /// deduplicated set.
    #[must_use]
    pub fn servers_for(&self, key: &[u8], active: usize) -> Vec<ServerId> {
        self.hashers
            .iter()
            .map(|h| self.placement.server_for(h.hash_bytes(key), active))
            .collect()
    }

    /// The distinct servers holding `key`, in provisioning order.
    #[must_use]
    pub fn distinct_servers_for(&self, key: &[u8], active: usize) -> Vec<ServerId> {
        let mut v = self.servers_for(key, active);
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Eq. 3: the probability that `r` independent uniform placements
    /// over `n` servers are pairwise distinct,
    /// `Π_{i=0}^{r-1} (n - i) / n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn no_conflict_probability(r: usize, n: usize) -> f64 {
        assert!(n > 0, "need at least one server");
        (0..r).fold(1.0, |acc, i| acc * (n.saturating_sub(i)) as f64 / n as f64)
    }
}

impl fmt::Debug for ReplicatedPlacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReplicatedPlacement")
            .field("servers", &self.placement.max_servers())
            .field("replicas", &self.hashers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_count_and_activity() {
        let rp = ReplicatedPlacement::new(8, 2, 0);
        assert_eq!(rp.replicas(), 2);
        for k in 0..100u64 {
            let key = k.to_le_bytes();
            for s in rp.servers_for(&key, 5) {
                assert!(s.index() < 5);
            }
        }
    }

    #[test]
    fn rings_are_independent() {
        // The two rings should disagree on a substantial fraction of
        // keys; identical rings would defeat replication.
        let rp = ReplicatedPlacement::new(10, 2, 7);
        let mut differ = 0;
        for k in 0..5_000u64 {
            let servers = rp.servers_for(&k.to_le_bytes(), 10);
            if servers[0] != servers[1] {
                differ += 1;
            }
        }
        let frac = f64::from(differ) / 5_000.0;
        // Eq. 3 predicts 90% distinct for r=2, n=10.
        assert!((frac - 0.9).abs() < 0.03, "distinct fraction {frac}");
    }

    #[test]
    fn empirical_conflict_rate_matches_eq3() {
        for (r, n) in [(2usize, 5usize), (3, 10), (2, 20)] {
            let rp = ReplicatedPlacement::new(n.max(r), r, 13);
            let trials = 20_000u64;
            let mut all_distinct = 0u64;
            for k in 0..trials {
                if rp.distinct_servers_for(&k.to_le_bytes(), n).len() == r {
                    all_distinct += 1;
                }
            }
            let measured = all_distinct as f64 / trials as f64;
            let predicted = ReplicatedPlacement::no_conflict_probability(r, n);
            assert!(
                (measured - predicted).abs() < 0.02,
                "r={r} n={n}: measured {measured}, Eq.3 {predicted}"
            );
        }
    }

    #[test]
    fn no_conflict_probability_edge_cases() {
        assert_eq!(ReplicatedPlacement::no_conflict_probability(1, 10), 1.0);
        assert_eq!(ReplicatedPlacement::no_conflict_probability(11, 10), 0.0);
        let p = ReplicatedPlacement::no_conflict_probability(3, 1000);
        assert!(p > 0.99, "large n makes conflicts rare: {p}");
    }

    #[test]
    fn distinct_servers_deduplicates() {
        let rp = ReplicatedPlacement::new(4, 3, 0);
        for k in 0..500u64 {
            let key = k.to_le_bytes();
            let all = rp.servers_for(&key, 4);
            let distinct = rp.distinct_servers_for(&key, 4);
            assert!(distinct.len() <= all.len());
            assert!(!distinct.is_empty());
            let mut sorted = distinct.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, distinct, "sorted order");
        }
    }
}
