//! The `hash(key) mod n` baseline.

use crate::server::ServerId;
use crate::strategy::PlacementStrategy;

/// The simple hash-and-modulo load distribution: the paper's `Static`
/// scenario (fixed `n = N`) and `Naive` scenario (`n = n(t)` follows
/// provisioning).
///
/// Perfectly balanced for any fixed `n`, but a change `n → n'` remaps
/// roughly `1 - 1/max(n, n')`... nearly *all* keys — the Reddit
/// incident the paper's introduction recounts, and the cause of the
/// `Naive` delay spikes in Fig. 9.
///
/// # Example
///
/// ```
/// use proteus_ring::{ModuloStrategy, PlacementStrategy};
/// let m = ModuloStrategy::new(10);
/// assert_eq!(m.server_for(23, 10).index(), 3);
/// assert_eq!(m.server_for(23, 4).index(), 3);
/// assert_eq!(m.server_for(22, 4).index(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModuloStrategy {
    servers: usize,
}

impl ModuloStrategy {
    /// Creates the strategy for a cluster of `servers` servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    #[must_use]
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "need at least one server");
        ModuloStrategy { servers }
    }
}

impl PlacementStrategy for ModuloStrategy {
    fn server_for(&self, key_hash: u64, active: usize) -> ServerId {
        assert!(
            active >= 1 && active <= self.servers,
            "invalid active count {active}"
        );
        ServerId::new((key_hash % active as u64) as u32)
    }

    fn max_servers(&self) -> usize {
        self.servers
    }

    fn name(&self) -> &str {
        "modulo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::splitmix64;

    #[test]
    fn distributes_evenly_for_fixed_n() {
        let m = ModuloStrategy::new(8);
        let mut counts = vec![0u32; 8];
        for k in 0..80_000u64 {
            counts[m.server_for(splitmix64(k), 8).index()] += 1;
        }
        for &c in &counts {
            let dev = (f64::from(c) - 10_000.0).abs() / 10_000.0;
            assert!(dev < 0.03);
        }
    }

    #[test]
    fn changing_n_remaps_most_keys() {
        // The motivating failure: n -> n+1 remaps ~n/(n+1) of keys.
        let m = ModuloStrategy::new(11);
        let mut moved = 0u32;
        let samples = 50_000u64;
        for k in 0..samples {
            let key = splitmix64(k);
            if m.server_for(key, 10) != m.server_for(key, 11) {
                moved += 1;
            }
        }
        let frac = f64::from(moved) / samples as f64;
        assert!(frac > 0.85, "expected ~10/11 remapped, got {frac}");
    }

    #[test]
    #[should_panic(expected = "invalid active count")]
    fn rejects_more_active_than_total() {
        let m = ModuloStrategy::new(4);
        let _ = m.server_for(1, 5);
    }
}
