//! The key→server lookup interface shared by all load-distribution
//! schemes.

use crate::server::ServerId;

/// A deterministic mapping from key hashes to cache servers, for any
/// number of active servers.
///
/// This is the contract the web tier relies on (Section II's third
/// objective): lookups are pure functions of `(key_hash, active)`, so
/// every web server makes identical routing decisions with no
/// coordination.
///
/// Implementations:
/// - [`ProteusPlacement`](crate::ProteusPlacement) — Algorithm 1.
/// - [`RandomRing`](crate::RandomRing) — classic consistent hashing
///   (the paper's `Consistent` baseline).
/// - [`ModuloStrategy`](crate::ModuloStrategy) — `hash mod n`
///   (the `Static` / `Naive` baselines).
///
/// # Example
///
/// ```
/// use proteus_ring::{ModuloStrategy, PlacementStrategy};
/// let strategy = ModuloStrategy::new(10);
/// let server = strategy.server_for(0xDEADBEEF, 4);
/// assert!(server.index() < 4);
/// ```
pub trait PlacementStrategy {
    /// Maps a key hash to the server responsible for it when the first
    /// `active` servers of the provisioning order are on.
    ///
    /// # Panics
    ///
    /// Implementations panic if `active == 0` or
    /// `active > max_servers()`.
    fn server_for(&self, key_hash: u64, active: usize) -> ServerId;

    /// The largest supported number of active servers.
    fn max_servers(&self) -> usize;

    /// A short human-readable name for reports ("proteus",
    /// "consistent", "modulo").
    fn name(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModuloStrategy;

    #[test]
    fn trait_object_usability() {
        // The trait must stay object-safe: the web tier holds
        // `Box<dyn PlacementStrategy>` chosen per scenario.
        let boxed: Box<dyn PlacementStrategy> = Box::new(ModuloStrategy::new(4));
        assert_eq!(boxed.max_servers(), 4);
        assert!(boxed.server_for(123, 2).index() < 2);
        assert!(!boxed.name().is_empty());
    }
}
