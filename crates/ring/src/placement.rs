//! Algorithm 1: deterministic virtual-node placement.
//!
//! Given the fixed provisioning order `s1..sN`, the algorithm places
//! `N(N-1)/2 + 1` virtual nodes on the unit ring such that:
//!
//! - for every active prefix size `n`, each active server owns exactly
//!   `1/n` of the key space (the Balance Condition), and
//! - a transition `n → n'` remaps exactly `|n - n'| / max(n, n')` of
//!   the key space — the information-theoretic minimum.
//!
//! Construction (paper Section III-C): `s1` starts with one virtual
//! node covering the whole ring. For each subsequent server `s_i`, one
//! virtual node is created per smaller-indexed server `s_j` by
//! borrowing a host range of length `1/(i(i-1))` from the *start* of
//! the first of `s_j`'s ranges that is strictly longer than that.
//! Theorem 1 shows no placement satisfying the Balance Condition can
//! use fewer virtual nodes.

use std::fmt;

use crate::ratio::Ratio;
use crate::server::ServerId;
use crate::strategy::PlacementStrategy;

/// The largest cluster size for which exact (`i128`-rational) placement
/// arithmetic is guaranteed not to overflow.
///
/// Host-range endpoints have denominators dividing
/// `lcm{ i(i-1) : i ≤ N }`; at `N = 64` that is ≈ 6 × 10²⁷, leaving
/// ample headroom in `i128`. The paper's evaluation uses `N = 10`.
pub const MAX_EXACT_SERVERS: usize = 64;

/// A half-open arc `[start, start + len)` of the unit ring owned by one
/// virtual node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostRange {
    /// Start of the arc, in `[0, 1)`.
    pub start: Ratio,
    /// Length of the arc, in `(0, 1]`.
    pub len: Ratio,
}

impl HostRange {
    /// The arc's end (`start + len`), wrapped onto the unit circle.
    ///
    /// On the consistent-hashing ring the virtual node *sits at* this
    /// position: it serves keys in `(predecessor, end]`.
    #[must_use]
    pub fn end(&self) -> Ratio {
        (self.start + self.len).wrap_unit()
    }
}

/// One virtual node: a host range plus the physical server hosting it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualNode {
    /// The server hosting this virtual node.
    pub server: ServerId,
    /// The host range assigned by Algorithm 1.
    pub range: HostRange,
}

impl VirtualNode {
    /// The node's position on the ring (the end of its host range).
    #[must_use]
    pub fn position(&self) -> Ratio {
        self.range.end()
    }
}

/// The Proteus virtual-node placement (Algorithm 1) with precomputed
/// per-prefix lookup tables.
///
/// # Example
///
/// ```
/// use proteus_ring::{PlacementStrategy, ProteusPlacement};
///
/// let p = ProteusPlacement::generate(6);
/// // Theorem 1 lower bound: N(N-1)/2 + 1 virtual nodes.
/// assert_eq!(p.virtual_node_count(), 16);
/// // Exact balance for every active prefix.
/// for n in 1..=6 {
///     let shares = p.ownership_shares(n);
///     assert!(shares.iter().all(|s| *s == proteus_ring::Ratio::new(1, n as i128)));
/// }
/// ```
#[derive(Clone)]
pub struct ProteusPlacement {
    servers: usize,
    nodes: Vec<VirtualNode>,
    /// `tables[n-1]` = sorted `(ring_position, server)` pairs for the
    /// prefix of `n` active servers.
    tables: Vec<Vec<(u64, ServerId)>>,
    /// `flats[n-1]` = flat successor index over `tables[n-1]`, making
    /// `server_for` O(1) expected instead of O(log v).
    flats: Vec<FlatLookup>,
}

impl ProteusPlacement {
    /// Runs Algorithm 1 for `servers` physical servers and precomputes
    /// lookup tables for every active prefix.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0` or `servers > MAX_EXACT_SERVERS`.
    #[must_use]
    pub fn generate(servers: usize) -> Self {
        assert!(servers > 0, "need at least one server");
        assert!(
            servers <= MAX_EXACT_SERVERS,
            "exact placement supports up to {MAX_EXACT_SERVERS} servers, got {servers}"
        );
        // R[j] = s_{j+1}'s host ranges, in insertion order.
        let mut ranges: Vec<Vec<HostRange>> = vec![Vec::new(); servers];
        ranges[0].push(HostRange {
            start: Ratio::ZERO,
            len: Ratio::ONE,
        });
        for i in 2..=servers {
            let borrow = Ratio::new(1, (i as i128) * (i as i128 - 1));
            for j in 1..i {
                // Find the first feasible range of s_j: strictly longer
                // than the borrow amount (Algorithm 1 line 7).
                let donor = ranges[j - 1]
                    .iter_mut()
                    .find(|r| r.len > borrow)
                    .unwrap_or_else(|| {
                        panic!(
                            "Algorithm 1 invariant violated: no feasible donor in R[{j}] for s{i}"
                        )
                    });
                let new_range = HostRange {
                    start: donor.start,
                    len: borrow,
                };
                donor.start = (donor.start + borrow).wrap_unit();
                donor.len -= borrow;
                ranges[i - 1].push(new_range);
            }
        }
        let mut nodes = Vec::with_capacity(servers * (servers - 1) / 2 + 1);
        for (j, server_ranges) in ranges.iter().enumerate() {
            for &range in server_ranges {
                nodes.push(VirtualNode {
                    server: ServerId::new(j as u32),
                    range,
                });
            }
        }
        let tables = build_tables(servers, &nodes);
        let flats = tables.iter().map(|t| FlatLookup::build(t)).collect();
        ProteusPlacement {
            servers,
            nodes,
            tables,
            flats,
        }
    }

    /// Total number of virtual nodes (`N(N-1)/2 + 1` by Theorem 1).
    #[must_use]
    pub fn virtual_node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All virtual nodes, grouped by server in provisioning order.
    #[must_use]
    pub fn virtual_nodes(&self) -> &[VirtualNode] {
        &self.nodes
    }

    /// The virtual nodes hosted by one server.
    #[must_use]
    pub fn virtual_nodes_of(&self, server: ServerId) -> Vec<VirtualNode> {
        self.nodes
            .iter()
            .filter(|v| v.server == server)
            .copied()
            .collect()
    }

    /// Exact share of the key space owned by each of the first `n`
    /// servers when exactly `n` servers are active.
    ///
    /// Ownership follows consistent-hashing successor semantics: the
    /// virtual node at position `p` owns the arc from the previous
    /// *active* virtual node's position to `p`. Algorithm 1 guarantees
    /// every entry equals `1/n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > max_servers()`.
    #[must_use]
    pub fn ownership_shares(&self, n: usize) -> Vec<Ratio> {
        assert!(n >= 1 && n <= self.servers, "invalid active count {n}");
        let mut active: Vec<(Ratio, ServerId)> = self
            .nodes
            .iter()
            .filter(|v| v.server.is_active(n))
            .map(|v| (v.position(), v.server))
            .collect();
        active.sort();
        let mut shares = vec![Ratio::ZERO; n];
        for (idx, &(pos, server)) in active.iter().enumerate() {
            let prev = if idx == 0 {
                // Wrap: the first node owns from the last node around 0.
                active.last().unwrap().0
            } else {
                active[idx - 1].0
            };
            let arc = if idx == 0 {
                // (prev, 1) ∪ (0, pos]
                (Ratio::ONE - prev) + pos
            } else {
                pos - prev
            };
            shares[server.index()] += arc;
        }
        if n == 1 {
            shares[0] = Ratio::ONE;
        }
        shares
    }

    /// Sorted `(ring position, server)` lookup table for `n` active
    /// servers. Positions are the virtual nodes' arc ends scaled onto
    /// the 64-bit ring.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > max_servers()`.
    #[must_use]
    pub fn lookup_table(&self, n: usize) -> &[(u64, ServerId)] {
        assert!(n >= 1 && n <= self.servers, "invalid active count {n}");
        &self.tables[n - 1]
    }

    /// `server_for` resolved by binary search over the lookup table —
    /// the pre-flat-index routing path, kept public so tests and
    /// benches can verify the O(1) path against it bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `active == 0` or `active > max_servers()`.
    #[must_use]
    pub fn server_for_bsearch(&self, key_hash: u64, active: usize) -> ServerId {
        successor(self.lookup_table(active), key_hash)
    }
}

fn build_tables(servers: usize, nodes: &[VirtualNode]) -> Vec<Vec<(u64, ServerId)>> {
    (1..=servers)
        .map(|n| {
            let mut table: Vec<(u64, ServerId)> = nodes
                .iter()
                .filter(|v| v.server.is_active(n))
                .map(|v| (v.position().to_ring_position(), v.server))
                .collect();
            table.sort_unstable();
            table
        })
        .collect()
}

/// Successor lookup on a sorted `(position, server)` table: the first
/// node at or after `key`, wrapping to the smallest position.
pub(crate) fn successor(table: &[(u64, ServerId)], key: u64) -> ServerId {
    debug_assert!(!table.is_empty());
    match table.binary_search_by(|&(pos, _)| pos.cmp(&key)) {
        Ok(i) => table[i].1,
        Err(i) if i < table.len() => table[i].1,
        Err(_) => table[0].1,
    }
}

/// Flat successor index over one sorted `(position, server)` table.
///
/// The ring is cut into a power-of-two number of equal buckets (twice
/// the table length, so buckets hold half an entry on average). The
/// top bits of a key hash select its bucket directly; `starts[b]` is
/// the index of the first table entry at or past the bucket's floor
/// position, so a lookup lands there and scans forward only past the
/// entries sharing the bucket. That makes `server_for` O(1) expected —
/// one shift, one array read, a short neighbor scan — while returning
/// exactly what the binary search in [`successor`] returns.
#[derive(Clone, Debug)]
pub(crate) struct FlatLookup {
    /// `64 - log2(buckets)`: `key >> shift` is the key's bucket.
    shift: u32,
    /// `starts[b]` = first table index with position ≥ `b << shift`.
    starts: Vec<u32>,
}

impl FlatLookup {
    pub(crate) fn build(table: &[(u64, ServerId)]) -> FlatLookup {
        assert!(
            table.len() < u32::MAX as usize / 2,
            "lookup table too large for a flat index"
        );
        // At least 2 buckets, so shift ≤ 63 and `b << shift` is sound
        // for every bucket index.
        let buckets = (table.len().max(1) * 2).next_power_of_two();
        let shift = 64 - buckets.trailing_zeros();
        let mut starts = Vec::with_capacity(buckets);
        let mut idx: u32 = 0;
        for b in 0..buckets as u64 {
            let floor = b << shift;
            while (idx as usize) < table.len() && table[idx as usize].0 < floor {
                idx += 1;
            }
            starts.push(idx);
        }
        FlatLookup { shift, starts }
    }

    /// The first node at or after `key`, wrapping to the smallest
    /// position — bit-identical to [`successor`] on the same table.
    pub(crate) fn successor(&self, table: &[(u64, ServerId)], key: u64) -> ServerId {
        debug_assert!(!table.is_empty());
        let mut j = self.starts[(key >> self.shift) as usize] as usize;
        while j < table.len() && table[j].0 < key {
            j += 1;
        }
        table.get(j).unwrap_or(&table[0]).1
    }
}

impl PlacementStrategy for ProteusPlacement {
    fn server_for(&self, key_hash: u64, active: usize) -> ServerId {
        // The assert inside lookup_table also validates `active` here.
        let table = self.lookup_table(active);
        self.flats[active - 1].successor(table, key_hash)
    }

    fn max_servers(&self) -> usize {
        self.servers
    }

    fn name(&self) -> &str {
        "proteus"
    }
}

impl fmt::Debug for ProteusPlacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProteusPlacement")
            .field("servers", &self.servers)
            .field("virtual_nodes", &self.nodes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_owns_everything() {
        let p = ProteusPlacement::generate(1);
        assert_eq!(p.virtual_node_count(), 1);
        assert_eq!(p.ownership_shares(1), vec![Ratio::ONE]);
        assert_eq!(p.server_for(u64::MAX / 3, 1), ServerId::new(0));
    }

    #[test]
    fn two_servers_split_in_half() {
        let p = ProteusPlacement::generate(2);
        assert_eq!(p.virtual_node_count(), 2);
        assert_eq!(
            p.ownership_shares(2),
            vec![Ratio::new(1, 2), Ratio::new(1, 2)]
        );
    }

    #[test]
    fn vnode_count_matches_theorem_1_lower_bound() {
        for n in 1..=20 {
            let p = ProteusPlacement::generate(n);
            assert_eq!(p.virtual_node_count(), n * (n - 1) / 2 + 1, "N={n}");
        }
    }

    #[test]
    fn every_prefix_is_exactly_balanced() {
        // The central claim of Section III-D, verified exactly.
        for total in [1usize, 2, 3, 4, 6, 10, 16] {
            let p = ProteusPlacement::generate(total);
            for n in 1..=total {
                let shares = p.ownership_shares(n);
                for (i, s) in shares.iter().enumerate() {
                    assert_eq!(
                        *s,
                        Ratio::new(1, n as i128),
                        "N={total} n={n} server={i} share={s}"
                    );
                }
            }
        }
    }

    #[test]
    fn server_i_has_i_minus_1_vnodes_except_first() {
        let p = ProteusPlacement::generate(8);
        assert_eq!(p.virtual_nodes_of(ServerId::new(0)).len(), 1);
        for i in 1..8u32 {
            assert_eq!(
                p.virtual_nodes_of(ServerId::new(i)).len(),
                i as usize,
                "s{}",
                i + 1
            );
        }
    }

    #[test]
    fn host_ranges_partition_the_full_ring() {
        let p = ProteusPlacement::generate(10);
        let total: Ratio = p.nodes.iter().fold(Ratio::ZERO, |acc, v| acc + v.range.len);
        assert_eq!(total, Ratio::ONE);
        // No zero-length ranges (the footnote's degenerate case).
        assert!(p.nodes.iter().all(|v| !v.range.len.is_zero()));
        // Starts are unique.
        let mut starts: Vec<Ratio> = p.nodes.iter().map(|v| v.range.start).collect();
        starts.sort();
        starts.dedup();
        assert_eq!(starts.len(), p.virtual_node_count());
    }

    #[test]
    fn lookup_agrees_with_exact_ownership() {
        // Sampled keys land on each server in proportion 1/n.
        let p = ProteusPlacement::generate(6);
        for n in 1..=6usize {
            let mut counts = vec![0u32; n];
            let samples = 60_000u64;
            for k in 0..samples {
                let key = crate::hash::splitmix64(k);
                counts[p.server_for(key, n).index()] += 1;
            }
            let expect = samples as f64 / n as f64;
            for (i, &c) in counts.iter().enumerate() {
                let dev = (f64::from(c) - expect).abs() / expect;
                assert!(dev < 0.02, "n={n} server={i} count={c} expect={expect}");
            }
        }
    }

    #[test]
    fn scale_down_migrates_only_the_removed_servers_share() {
        // Minimal-migration claim: going n -> n-1 remaps exactly the
        // keys owned by s_n, i.e. a 1/n fraction, and every key not on
        // s_n keeps its server.
        let p = ProteusPlacement::generate(10);
        for n in 2..=10usize {
            let mut moved = 0u32;
            let samples = 50_000u64;
            for k in 0..samples {
                let key = crate::hash::splitmix64(k ^ 0xABCD);
                let before = p.server_for(key, n);
                let after = p.server_for(key, n - 1);
                if before != after {
                    moved += 1;
                    assert_eq!(
                        before,
                        ServerId::new(n as u32 - 1),
                        "only keys of the deactivated server may move"
                    );
                }
            }
            let frac = f64::from(moved) / samples as f64;
            let expect = 1.0 / n as f64;
            assert!(
                (frac - expect).abs() < 0.01,
                "n={n} moved fraction {frac} expected {expect}"
            );
        }
    }

    #[test]
    fn scale_down_spreads_load_evenly_over_survivors() {
        // Balance Condition: when s_n turns off, its keys are split
        // evenly (1/(n(n-1)) each) over the n-1 survivors.
        let p = ProteusPlacement::generate(6);
        for n in 3..=6usize {
            let mut gains = vec![0u32; n - 1];
            let samples = 120_000u64;
            for k in 0..samples {
                let key = crate::hash::splitmix64(k ^ 0x77);
                let before = p.server_for(key, n);
                if before == ServerId::new(n as u32 - 1) {
                    gains[p.server_for(key, n - 1).index()] += 1;
                }
            }
            let total: u32 = gains.iter().sum();
            let expect = f64::from(total) / (n - 1) as f64;
            for (i, &g) in gains.iter().enumerate() {
                let dev = (f64::from(g) - expect).abs() / expect;
                assert!(dev < 0.05, "n={n} survivor={i} gain={g} expect={expect}");
            }
        }
    }

    #[test]
    fn lookup_is_deterministic_across_instances() {
        // Two independently generated placements (as two web servers
        // would hold) agree on every decision.
        let a = ProteusPlacement::generate(12);
        let b = ProteusPlacement::generate(12);
        for k in 0..10_000u64 {
            let key = crate::hash::splitmix64(k);
            for n in [1usize, 3, 7, 12] {
                assert_eq!(a.server_for(key, n), b.server_for(key, n));
            }
        }
    }

    #[test]
    fn generate_succeeds_up_to_max_exact_servers() {
        let p = ProteusPlacement::generate(MAX_EXACT_SERVERS);
        assert_eq!(
            p.virtual_node_count(),
            MAX_EXACT_SERVERS * (MAX_EXACT_SERVERS - 1) / 2 + 1
        );
        // Spot-check balance at a few prefixes (full exactness is
        // covered for smaller N; this guards overflow).
        for n in [1usize, 2, 32, 63, 64] {
            let shares = p.ownership_shares(n);
            assert!(
                shares.iter().all(|s| *s == Ratio::new(1, n as i128)),
                "n={n}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "exact placement supports up to")]
    fn generate_rejects_oversized_cluster() {
        let _ = ProteusPlacement::generate(MAX_EXACT_SERVERS + 1);
    }

    #[test]
    #[should_panic(expected = "invalid active count")]
    fn zero_active_rejected() {
        let p = ProteusPlacement::generate(3);
        let _ = p.server_for(1, 0);
    }

    #[test]
    fn debug_is_nonempty() {
        let p = ProteusPlacement::generate(3);
        assert!(format!("{p:?}").contains("ProteusPlacement"));
    }

    #[test]
    fn flat_lookup_matches_binary_search_at_every_boundary() {
        // The adversarial keys are the vnode positions themselves and
        // their ±1 neighbors (where the successor changes), plus the
        // ring's own edges (0, MAX — the wrap cases) and bucket floors.
        for total in [1usize, 2, 3, 5, 10, 17, 64] {
            let p = ProteusPlacement::generate(total);
            for n in 1..=total {
                let table = p.lookup_table(n);
                let flat = &p.flats[n - 1];
                let mut keys = vec![0u64, 1, u64::MAX - 1, u64::MAX];
                for &(pos, _) in table {
                    keys.extend([pos.wrapping_sub(1), pos, pos.wrapping_add(1)]);
                }
                for b in 0..flat.starts.len() as u64 {
                    keys.push(b << flat.shift);
                }
                for key in keys {
                    assert_eq!(
                        flat.successor(table, key),
                        successor(table, key),
                        "N={total} n={n} key={key:#x}"
                    );
                }
            }
        }
    }

    #[test]
    fn flat_lookup_matches_binary_search_on_random_keys() {
        let p = ProteusPlacement::generate(32);
        for n in 1..=32usize {
            let table = p.lookup_table(n);
            let flat = &p.flats[n - 1];
            for k in 0..20_000u64 {
                let key = crate::hash::splitmix64(k.wrapping_mul(n as u64 + 1));
                assert_eq!(
                    flat.successor(table, key),
                    successor(table, key),
                    "n={n} key={key:#x}"
                );
            }
        }
    }

    #[test]
    fn server_for_bsearch_is_the_same_routing_function() {
        let p = ProteusPlacement::generate(16);
        for k in 0..10_000u64 {
            let key = crate::hash::splitmix64(k ^ 0xF1A7);
            for n in [1usize, 2, 7, 16] {
                assert_eq!(p.server_for(key, n), p.server_for_bsearch(key, n));
            }
        }
    }
}
