//! Physical server identity.

use std::fmt;

/// The identity of a physical cache server within the fixed
/// provisioning order.
///
/// Section III-A fixes a provisioning order `(s1, s2, ..., sN)`; servers
/// are always activated as a prefix of this order. `ServerId` is a
/// zero-based index into it: `ServerId::new(0)` is `s1`. A server with
/// index `i` is active exactly when the active count `n > i`.
///
/// # Example
///
/// ```
/// use proteus_ring::ServerId;
/// let s3 = ServerId::new(2);
/// assert_eq!(s3.index(), 2);
/// assert_eq!(s3.ordinal(), 3); // 1-based, as in the paper's notation
/// assert!(s3.is_active(3));
/// assert!(!s3.is_active(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ServerId(u32);

impl ServerId {
    /// Creates a server ID from its zero-based position in the
    /// provisioning order.
    #[must_use]
    pub fn new(index: u32) -> Self {
        ServerId(index)
    }

    /// Zero-based index in the provisioning order.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// One-based ordinal, matching the paper's `s1..sN` notation.
    #[must_use]
    pub fn ordinal(self) -> u32 {
        self.0 + 1
    }

    /// Whether this server is active when `active_count` servers are on.
    #[must_use]
    pub fn is_active(self, active_count: usize) -> bool {
        self.index() < active_count
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.ordinal())
    }
}

impl From<u32> for ServerId {
    fn from(index: u32) -> Self {
        ServerId::new(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordinal_is_one_based() {
        assert_eq!(ServerId::new(0).ordinal(), 1);
        assert_eq!(ServerId::new(9).ordinal(), 10);
        assert_eq!(format!("{}", ServerId::new(4)), "s5");
    }

    #[test]
    fn activity_follows_prefix_rule() {
        let s = ServerId::new(5);
        assert!(!s.is_active(5));
        assert!(s.is_active(6));
        assert!(s.is_active(100));
    }

    #[test]
    fn ordering_matches_provisioning_order() {
        assert!(ServerId::new(0) < ServerId::new(1));
        let mut v = vec![ServerId::new(2), ServerId::new(0), ServerId::new(1)];
        v.sort();
        assert_eq!(
            v,
            vec![ServerId::new(0), ServerId::new(1), ServerId::new(2)]
        );
    }
}
