//! Hash functions for keys and ring positions.
//!
//! Implemented in-repo (FNV-1a with a SplitMix64 finalizer) so the
//! workspace needs no external hashing crates, and so the web tier,
//! cache tier, and TCP protocol all agree on key hashes byte-for-byte.

/// 64-bit FNV-1a over a byte string.
///
/// # Example
///
/// ```
/// let h = proteus_ring::hash::fnv1a64(b"Main_Page");
/// assert_ne!(h, proteus_ring::hash::fnv1a64(b"main_page"));
/// ```
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// SplitMix64 finalizer: a fast, high-quality 64-bit mixing function.
///
/// Used to turn sequential integers (page IDs) and seed-xored hashes
/// into uniformly distributed ring positions.
///
/// # Example
///
/// ```
/// use proteus_ring::hash::splitmix64;
/// assert_ne!(splitmix64(1), splitmix64(2));
/// ```
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A seeded family of 64-bit key hashers.
///
/// Each [`KeyHasher`] deterministically maps byte strings and integer
/// keys to `u64`. Different seeds give (practically) independent hash
/// functions — exactly what the replication scheme of Section III-E
/// needs for its `r` distinct hash rings, and what the counting Bloom
/// filter needs for its `h` hash functions.
///
/// # Example
///
/// ```
/// use proteus_ring::hash::KeyHasher;
/// let a = KeyHasher::new(1);
/// let b = KeyHasher::new(2);
/// assert_eq!(a.hash_bytes(b"k"), KeyHasher::new(1).hash_bytes(b"k"));
/// assert_ne!(a.hash_bytes(b"k"), b.hash_bytes(b"k"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KeyHasher {
    seed: u64,
}

impl KeyHasher {
    /// Creates a hasher with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        KeyHasher { seed }
    }

    /// The hasher's seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Hashes a byte string.
    #[must_use]
    pub fn hash_bytes(&self, bytes: &[u8]) -> u64 {
        splitmix64(fnv1a64(bytes) ^ self.seed)
    }

    /// Hashes an integer key (e.g. a page ID).
    #[must_use]
    pub fn hash_u64(&self, key: u64) -> u64 {
        splitmix64(key ^ splitmix64(self.seed))
    }
}

impl Default for KeyHasher {
    fn default() -> Self {
        KeyHasher::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn splitmix_is_a_bijection_sample() {
        // Distinct inputs produce distinct outputs on a large sample
        // (SplitMix64 is bijective, so no collisions at all).
        let mut seen = std::collections::HashSet::new();
        for i in 0..100_000u64 {
            assert!(seen.insert(splitmix64(i)));
        }
    }

    #[test]
    fn hasher_is_deterministic_and_seed_sensitive() {
        let a = KeyHasher::new(7);
        assert_eq!(a.hash_u64(42), KeyHasher::new(7).hash_u64(42));
        assert_ne!(a.hash_u64(42), KeyHasher::new(8).hash_u64(42));
        assert_ne!(a.hash_bytes(b"x"), a.hash_bytes(b"y"));
    }

    #[test]
    fn hash_u64_distributes_uniformly_across_buckets() {
        let hasher = KeyHasher::new(3);
        let buckets = 16usize;
        let mut counts = vec![0u32; buckets];
        let n = 160_000u64;
        for k in 0..n {
            counts[(hasher.hash_u64(k) % buckets as u64) as usize] += 1;
        }
        let expect = n as f64 / buckets as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (f64::from(c) - expect).abs() / expect;
            assert!(dev < 0.03, "bucket {i}: {c} vs {expect}");
        }
    }

    #[test]
    fn default_hasher_is_seed_zero() {
        assert_eq!(KeyHasher::default().seed(), 0);
    }
}
