//! Consistent hashing and the Proteus virtual-node placement algorithm.
//!
//! This crate implements the load-balancing half of the paper
//! *"Proteus: Power Proportional Memory Cache Cluster in Data Centers"*
//! (ICDCS 2013, Section III):
//!
//! - [`ProteusPlacement`] — the deterministic virtual-node placement of
//!   **Algorithm 1**: given a fixed provisioning order `s1..sN`, it
//!   places exactly `N(N-1)/2 + 1` virtual nodes (the Theorem 1 lower
//!   bound) such that every active prefix of servers owns an exactly
//!   equal share of the key space and transitions remap the minimum
//!   possible fraction of keys.
//! - [`RandomRing`] — classic consistent hashing with randomly placed
//!   virtual nodes: the paper's `Consistent` baseline, with both the
//!   `O(log n)` and `n²/2` virtual-node configurations.
//! - [`ModuloStrategy`] — `hash(key) mod n`: the paper's `Static` and
//!   `Naive` baselines.
//! - [`PlacementStrategy`] — the trait unifying key→server lookup for
//!   any active-prefix size, used by the web tier (`proteus-core`).
//! - [`analysis`] — remap fractions, per-server ownership shares, and
//!   final-successor sets (the `Ps_i` of Section III-B / Fig. 2).
//! - [`ReplicatedPlacement`] — `r` hash rings sharing one placement for
//!   fault tolerance (Section III-E, Eq. 3).
//!
//! Placement arithmetic is *exact*: host ranges are [`Ratio`]s over
//! `i128`, so the balance and minimal-migration guarantees are verified
//! bit-for-bit in tests rather than up to floating-point noise.
//!
//! # Example
//!
//! ```
//! use proteus_ring::{PlacementStrategy, ProteusPlacement, ServerId};
//!
//! // A 6-server cluster with fixed provisioning order s1..s6 (Fig. 2).
//! let placement = ProteusPlacement::generate(6);
//! assert_eq!(placement.virtual_node_count(), 6 * 5 / 2 + 1);
//!
//! // Any prefix of active servers balances exactly.
//! let key = proteus_ring::hash::fnv1a64(b"Main_Page");
//! let with_four = placement.server_for(key, 4);
//! assert!(with_four.index() < 4);
//! # let _ = with_four;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod hash;
mod modulo;
mod placement;
mod random_ring;
mod ratio;
mod replication;
mod server;
mod strategy;

pub use modulo::ModuloStrategy;
pub use placement::{HostRange, ProteusPlacement, VirtualNode, MAX_EXACT_SERVERS};
pub use random_ring::RandomRing;
pub use ratio::Ratio;
pub use replication::ReplicatedPlacement;
pub use server::ServerId;
pub use strategy::PlacementStrategy;
