//! Classic consistent hashing with randomly placed virtual nodes —
//! the paper's `Consistent` baseline.

use std::fmt;

use crate::hash::splitmix64;
use crate::placement::FlatLookup;
use crate::server::ServerId;
use crate::strategy::PlacementStrategy;

/// Consistent hashing with `vnodes_per_server` randomly positioned
/// virtual nodes per physical server.
///
/// The paper evaluates two configurations of this baseline (Fig. 5):
/// `O(log n)` virtual nodes and `n²/2` total virtual nodes (i.e. `n/2`
/// per server, matching Proteus's total). Both balance noticeably worse
/// than Algorithm 1's deterministic placement. Positions derive from a
/// seed, mirroring the paper's setup where "all web servers share the
/// same random seed (0)" so that routing stays consistent across the
/// web tier.
///
/// # Example
///
/// ```
/// use proteus_ring::{PlacementStrategy, RandomRing};
///
/// let ring = RandomRing::new(10, 5, 0);
/// let s = ring.server_for(0xFEED, 7);
/// assert!(s.index() < 7);
/// // Same seed ⇒ identical routing on every web server.
/// let other = RandomRing::new(10, 5, 0);
/// assert_eq!(other.server_for(0xFEED, 7), s);
/// ```
#[derive(Clone)]
pub struct RandomRing {
    servers: usize,
    vnodes_per_server: usize,
    seed: u64,
    tables: Vec<Vec<(u64, ServerId)>>,
    /// `flats[n-1]` = flat successor index over `tables[n-1]` (O(1)
    /// expected lookups, same as `ProteusPlacement`).
    flats: Vec<FlatLookup>,
}

impl RandomRing {
    /// Creates a ring for `servers` servers with `vnodes_per_server`
    /// virtual nodes each, positioned pseudo-randomly from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0` or `vnodes_per_server == 0`.
    #[must_use]
    pub fn new(servers: usize, vnodes_per_server: usize, seed: u64) -> Self {
        assert!(servers > 0, "need at least one server");
        assert!(
            vnodes_per_server > 0,
            "need at least one virtual node per server"
        );
        let tables: Vec<Vec<(u64, ServerId)>> = (1..=servers)
            .map(|n| {
                let mut table: Vec<(u64, ServerId)> = (0..n)
                    .flat_map(|j| {
                        (0..vnodes_per_server).map(move |k| {
                            let pos = vnode_position(seed, j, k);
                            (pos, ServerId::new(j as u32))
                        })
                    })
                    .collect();
                table.sort_unstable();
                table
            })
            .collect();
        let flats = tables.iter().map(|t| FlatLookup::build(t)).collect();
        RandomRing {
            servers,
            vnodes_per_server,
            seed,
            tables,
            flats,
        }
    }

    /// The paper's `O(log n)` configuration: `ceil(log2 n)` virtual
    /// nodes per server.
    #[must_use]
    pub fn with_log_vnodes(servers: usize, seed: u64) -> Self {
        let v = (usize::BITS - servers.leading_zeros()).max(1) as usize;
        RandomRing::new(servers, v, seed)
    }

    /// The paper's `n²/2` configuration: `ceil(n/2)` virtual nodes per
    /// server, `n²/2` total — the same budget Algorithm 1 uses.
    #[must_use]
    pub fn with_quadratic_vnodes(servers: usize, seed: u64) -> Self {
        RandomRing::new(servers, servers.div_ceil(2).max(1), seed)
    }

    /// Virtual nodes per server.
    #[must_use]
    pub fn vnodes_per_server(&self) -> usize {
        self.vnodes_per_server
    }

    /// The placement seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

fn vnode_position(seed: u64, server: usize, replica: usize) -> u64 {
    splitmix64(seed ^ splitmix64((server as u64) << 20 | replica as u64))
}

impl PlacementStrategy for RandomRing {
    fn server_for(&self, key_hash: u64, active: usize) -> ServerId {
        assert!(
            active >= 1 && active <= self.servers,
            "invalid active count {active}"
        );
        self.flats[active - 1].successor(&self.tables[active - 1], key_hash)
    }

    fn max_servers(&self) -> usize {
        self.servers
    }

    fn name(&self) -> &str {
        "consistent"
    }
}

impl fmt::Debug for RandomRing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RandomRing")
            .field("servers", &self.servers)
            .field("vnodes_per_server", &self.vnodes_per_server)
            .field("seed", &self.seed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::KeyHasher;

    #[test]
    fn consistent_hashing_moves_few_keys_on_scale_down() {
        // The defining property vs modulo: n -> n-1 moves only the
        // departing server's keys (≈ 1/n), not almost everything.
        let ring = RandomRing::new(10, 16, 0);
        let hasher = KeyHasher::new(1);
        let samples = 50_000u64;
        let mut moved = 0u32;
        for k in 0..samples {
            let key = hasher.hash_u64(k);
            let before = ring.server_for(key, 10);
            let after = ring.server_for(key, 9);
            if before != after {
                moved += 1;
                assert_eq!(before, ServerId::new(9), "only s10's keys may move");
            }
        }
        let frac = f64::from(moved) / samples as f64;
        assert!(frac < 0.25, "moved fraction {frac} should be near 1/10");
    }

    #[test]
    fn few_vnodes_balance_poorly_many_balance_better() {
        // Reproduces the Fig. 5 ordering at the ownership level.
        let imbalance = |ring: &RandomRing, n: usize| {
            let mut counts = vec![0u64; n];
            let hasher = KeyHasher::new(2);
            for k in 0..200_000u64 {
                counts[ring.server_for(hasher.hash_u64(k), n).index()] += 1;
            }
            let min = *counts.iter().min().unwrap() as f64;
            let max = *counts.iter().max().unwrap() as f64;
            min / max
        };
        let log_ring = RandomRing::with_log_vnodes(10, 0);
        let quad_ring = RandomRing::with_quadratic_vnodes(10, 0);
        let dense_ring = RandomRing::new(10, 256, 0);
        let r_log = imbalance(&log_ring, 10);
        let r_quad = imbalance(&quad_ring, 10);
        let r_dense = imbalance(&dense_ring, 10);
        assert!(r_log < r_dense, "log {r_log} vs dense {r_dense}");
        assert!(r_quad <= r_dense + 0.05, "quad {r_quad} vs dense {r_dense}");
        // Even 256 random vnodes/server stays visibly below exact balance.
        assert!(r_dense < 0.999);
    }

    #[test]
    fn seed_controls_layout() {
        let a = RandomRing::new(4, 8, 0);
        let b = RandomRing::new(4, 8, 0);
        let c = RandomRing::new(4, 8, 1);
        let mut diff = 0;
        for k in 0..1000u64 {
            let key = splitmix64(k);
            assert_eq!(a.server_for(key, 4), b.server_for(key, 4));
            if a.server_for(key, 4) != c.server_for(key, 4) {
                diff += 1;
            }
        }
        assert!(diff > 100, "different seeds should route differently");
    }

    #[test]
    fn configuration_helpers() {
        assert_eq!(RandomRing::with_log_vnodes(10, 0).vnodes_per_server(), 4);
        assert_eq!(
            RandomRing::with_quadratic_vnodes(10, 0).vnodes_per_server(),
            5
        );
        assert_eq!(RandomRing::with_log_vnodes(1, 0).vnodes_per_server(), 1);
        assert_eq!(RandomRing::new(3, 2, 9).seed(), 9);
    }

    #[test]
    #[should_panic(expected = "at least one virtual node")]
    fn zero_vnodes_rejected() {
        let _ = RandomRing::new(3, 0, 0);
    }

    #[test]
    fn flat_lookup_matches_binary_search() {
        let ring = RandomRing::new(12, 32, 7);
        for n in 1..=12usize {
            let table = &ring.tables[n - 1];
            for k in 0..10_000u64 {
                let key = splitmix64(k ^ 0xBEEF);
                assert_eq!(
                    ring.flats[n - 1].successor(table, key),
                    crate::placement::successor(table, key),
                    "n={n} key={key:#x}"
                );
            }
            // Boundary keys where the successor flips.
            for &(pos, _) in table.iter() {
                for key in [pos.wrapping_sub(1), pos, pos.wrapping_add(1)] {
                    assert_eq!(
                        ring.flats[n - 1].successor(table, key),
                        crate::placement::successor(table, key),
                        "n={n} key={key:#x}"
                    );
                }
            }
        }
    }
}
