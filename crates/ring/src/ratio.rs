//! Exact rational arithmetic for host-range bookkeeping.
//!
//! Algorithm 1 repeatedly splits host ranges by `K / (i (i-1))`. Doing
//! this in floating point would accumulate error and make the paper's
//! exact-balance claims unverifiable, so placements are computed over
//! reduced `i128` fractions and only scaled to the `u64` ring for
//! lookup. Denominators divide `lcm{ i(i-1) : i ≤ N }`, which bounds
//! the supported exact cluster size (see
//! [`MAX_EXACT_SERVERS`](crate::MAX_EXACT_SERVERS)).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An exact non-negative rational number, kept in lowest terms.
///
/// Supports exactly the operations placement generation needs:
/// addition, subtraction, comparison, construction from an integer
/// fraction, and scaling onto the 64-bit ring.
///
/// # Example
///
/// ```
/// use proteus_ring::Ratio;
/// let third = Ratio::new(1, 3);
/// let sixth = Ratio::new(1, 6);
/// assert_eq!(third + sixth, Ratio::new(1, 2));
/// assert!(sixth < third);
/// assert_eq!((third - sixth).to_f64(), 1.0 / 6.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: i128,
    den: i128, // invariant: den > 0, gcd(num, den) == 1, num >= 0
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.abs()
}

impl Ratio {
    /// The rational zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// The rational one (the whole key space).
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Creates `num / den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0` or the value is negative.
    #[must_use]
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "zero denominator");
        let (num, den) = if den < 0 { (-num, -den) } else { (num, den) };
        assert!(num >= 0, "Ratio must be non-negative: {num}/{den}");
        if num == 0 {
            return Ratio::ZERO;
        }
        let g = gcd(num, den);
        Ratio {
            num: num / g,
            den: den / g,
        }
    }

    /// The numerator (lowest terms).
    #[must_use]
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// The denominator (lowest terms, always positive).
    #[must_use]
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Whether this is exactly zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Lossy conversion to `f64` (for reporting only).
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Subtracts, returning `None` if the result would be negative.
    #[must_use]
    pub fn checked_sub(self, rhs: Ratio) -> Option<Ratio> {
        if self < rhs {
            None
        } else {
            Some(self - rhs)
        }
    }

    /// Reduces the value modulo 1 (wraps ring positions ≥ 1 around).
    #[must_use]
    pub fn wrap_unit(self) -> Ratio {
        if self.num >= self.den {
            Ratio::new(self.num % self.den, self.den)
        } else {
            self
        }
    }

    /// Scales a value in `[0, 1]` onto the 64-bit ring:
    /// `floor(self * 2^64)`, with 1.0 wrapping to 0.
    ///
    /// # Panics
    ///
    /// Panics if the value is greater than one.
    #[must_use]
    pub fn to_ring_position(self) -> u64 {
        assert!(
            self.num <= self.den,
            "ring position must be in [0, 1]: {self}"
        );
        if self.num == self.den {
            return 0; // 1.0 ≡ 0 on the circle
        }
        // floor(num * 2^64 / den) via 64 rounds of shift-and-subtract
        // long division; num, den < 2^127 so `r << 1` cannot overflow
        // u128 as long as den < 2^127.
        let den = self.den as u128;
        let mut r = self.num as u128;
        let mut q: u64 = 0;
        for i in (0..64).rev() {
            r <<= 1;
            if r >= den {
                r -= den;
                q |= 1 << i;
            }
        }
        q
    }

    fn checked_add_impl(self, rhs: Ratio) -> Option<Ratio> {
        let g = gcd(self.den, rhs.den);
        let lhs_scale = rhs.den / g;
        let rhs_scale = self.den / g;
        let num = self
            .num
            .checked_mul(lhs_scale)?
            .checked_add(rhs.num.checked_mul(rhs_scale)?)?;
        let den = self.den.checked_mul(lhs_scale)?;
        Some(Ratio::new(num, den))
    }

    fn checked_sub_impl(self, rhs: Ratio) -> Option<Ratio> {
        let g = gcd(self.den, rhs.den);
        let lhs_scale = rhs.den / g;
        let rhs_scale = self.den / g;
        let num = self
            .num
            .checked_mul(lhs_scale)?
            .checked_sub(rhs.num.checked_mul(rhs_scale)?)?;
        let den = self.den.checked_mul(lhs_scale)?;
        if num < 0 {
            return None;
        }
        Some(Ratio::new(num, den))
    }
}

impl Add for Ratio {
    type Output = Ratio;
    /// # Panics
    ///
    /// Panics on `i128` overflow (cluster too large for exact mode).
    fn add(self, rhs: Ratio) -> Ratio {
        self.checked_add_impl(rhs)
            .expect("Ratio overflow: cluster too large for exact placement")
    }
}

impl AddAssign for Ratio {
    fn add_assign(&mut self, rhs: Ratio) {
        *self = *self + rhs;
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    /// # Panics
    ///
    /// Panics if the result would be negative or on `i128` overflow.
    fn sub(self, rhs: Ratio) -> Ratio {
        self.checked_sub_impl(rhs)
            .expect("Ratio subtraction underflow/overflow")
    }
}

impl SubAssign for Ratio {
    fn sub_assign(&mut self, rhs: Ratio) {
        *self = *self - rhs;
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        // Compare a/b vs c/d as a*d vs c*b, with the shared-gcd trick
        // to keep products in range.
        let g = gcd(self.den, other.den);
        let lhs = self.num.checked_mul(other.den / g);
        let rhs = other.num.checked_mul(self.den / g);
        match (lhs, rhs) {
            (Some(l), Some(r)) => l.cmp(&r),
            // Overflow fallback: compare as f64 (only reachable far
            // beyond MAX_EXACT_SERVERS).
            _ => self
                .to_f64()
                .partial_cmp(&other.to_f64())
                .expect("finite ratios"),
        }
    }
}

impl Default for Ratio {
    fn default() -> Self {
        Ratio::ZERO
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ratio({}/{})", self.num, self.den)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

impl From<u32> for Ratio {
    fn from(v: u32) -> Self {
        Ratio::new(i128::from(v), 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_reduces_to_lowest_terms() {
        let r = Ratio::new(4, 8);
        assert_eq!(r.numer(), 1);
        assert_eq!(r.denom(), 2);
        assert_eq!(Ratio::new(0, 5), Ratio::ZERO);
        assert_eq!(Ratio::new(-3, -6), Ratio::new(1, 2));
    }

    #[test]
    fn arithmetic_is_exact() {
        // 1/3 + 1/6 = 1/2; famously inexact in binary floating point.
        assert_eq!(Ratio::new(1, 3) + Ratio::new(1, 6), Ratio::new(1, 2));
        assert_eq!(
            Ratio::ONE - Ratio::new(1, 7) - Ratio::new(6, 7),
            Ratio::ZERO
        );
        let mut acc = Ratio::ZERO;
        for _ in 0..30 {
            acc += Ratio::new(1, 30);
        }
        assert_eq!(acc, Ratio::ONE);
    }

    #[test]
    fn ordering_matches_rational_order() {
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert!(Ratio::new(2, 3) > Ratio::new(3, 5));
        assert_eq!(Ratio::new(2, 4).cmp(&Ratio::new(1, 2)), Ordering::Equal);
    }

    #[test]
    fn checked_sub_guards_negative() {
        assert_eq!(Ratio::new(1, 4).checked_sub(Ratio::new(1, 2)), None);
        assert_eq!(
            Ratio::new(1, 2).checked_sub(Ratio::new(1, 4)),
            Some(Ratio::new(1, 4))
        );
    }

    #[test]
    fn wrap_unit_wraps_the_circle() {
        assert_eq!((Ratio::new(3, 2)).wrap_unit(), Ratio::new(1, 2));
        assert_eq!(Ratio::ONE.wrap_unit(), Ratio::ZERO);
        assert_eq!(Ratio::new(1, 3).wrap_unit(), Ratio::new(1, 3));
    }

    #[test]
    fn ring_position_scaling() {
        assert_eq!(Ratio::ZERO.to_ring_position(), 0);
        assert_eq!(Ratio::ONE.to_ring_position(), 0, "1.0 wraps");
        assert_eq!(Ratio::new(1, 2).to_ring_position(), 1u64 << 63);
        assert_eq!(Ratio::new(1, 4).to_ring_position(), 1u64 << 62);
        // Non-power-of-two denominator: floor(2^64 / 3).
        let third = Ratio::new(1, 3).to_ring_position();
        assert_eq!(third, 0x5555_5555_5555_5555);
    }

    #[test]
    fn ring_position_with_huge_denominator() {
        // Denominator near lcm(1..64): still exact via long division.
        let den: i128 = (2..=64i128).fold(1, |acc, i| {
            let g = gcd(acc, i);
            (acc / g).saturating_mul(i)
        });
        let r = Ratio::new(den / 2 + 1, den);
        let pos = r.to_ring_position();
        let expect = r.to_f64() * 2f64.powi(64);
        let err = (pos as f64 - expect).abs() / expect;
        assert!(err < 1e-9, "pos {pos} expect {expect}");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_below_zero_panics() {
        let _ = Ratio::new(1, 4) - Ratio::new(1, 2);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        assert_eq!(format!("{}", Ratio::new(1, 2)), "1/2");
        assert_eq!(format!("{:?}", Ratio::new(1, 2)), "Ratio(1/2)");
    }
}
