//! The wall-clock provisioning policy: what `n(t)` should be, given
//! what the cluster measured this tick.
//!
//! This is the paper's feedback controller (Section V: 0.4 s reference
//! delay, 0.5 s delay bound, per-slot updates) ported from simulated
//! slots to wall-clock ticks, with the guard rails a live loop needs:
//!
//! - **Dual signal.** On a healthy cluster the p99 sits far below the
//!   bound regardless of n, so delay alone cannot drive scale-*down*
//!   sizing. The policy therefore sizes n from measured load
//!   (utilization per active server) inside a hysteresis band, while
//!   the paper's delay set points act as the hard guard: p99 over the
//!   bound forces growth no matter what utilization says, and any p99
//!   above the reference vetoes shrinking.
//! - **Hysteresis.** Scale up when per-server utilization exceeds
//!   [`PolicyConfig::scale_up_util`]; scale down only when the load
//!   would still sit at or below [`PolicyConfig::scale_down_util`] on
//!   the *smaller* cluster. The dead band between the thresholds
//!   absorbs workload noise without flapping.
//! - **Ramp limit.** At most [`PolicyConfig::max_step`] servers per
//!   decision, in either direction — each transition has a digest
//!   broadcast and a drain window, and the controller must observe the
//!   result of one before committing to the next.
//! - **Cooldown.** After a transition window closes, hold for
//!   [`PolicyConfig::cooldown`] so the post-transition metrics (cold
//!   misses, migration traffic) settle before the next decision.

use std::time::{Duration, Instant};

use proteus_core::{DelaySignal, SetPoints};

/// Tunables for a [`WallPolicy`].
#[derive(Debug, Clone, Copy)]
pub struct PolicyConfig {
    /// Provisioned cluster size (the ceiling for n).
    pub total_servers: usize,
    /// Smallest n the policy will ever choose (the paper keeps at
    /// least one server on to hold the hot set).
    pub min_servers: usize,
    /// One server's serving capacity in ops/s — the utilization
    /// denominator, matching
    /// [`ObserverConfig::server_capacity_ops`](proteus_agg::ObserverConfig).
    pub server_capacity_ops: f64,
    /// The paper's reference/bound delay set points.
    pub points: SetPoints,
    /// Scale up when measured per-server utilization exceeds this.
    pub scale_up_util: f64,
    /// Scale down only while utilization *after* the shrink would stay
    /// at or below this. Must sit below `scale_up_util` to form a
    /// dead band.
    pub scale_down_util: f64,
    /// Largest |Δn| one decision may request.
    pub max_step: usize,
    /// Hold time after a transition window closes.
    pub cooldown: Duration,
}

impl PolicyConfig {
    /// Paper-style defaults for a cluster of `total_servers`, sized so
    /// the utilization band (55–75%) sits under the paper's 80%
    /// headroom fraction.
    ///
    /// # Panics
    ///
    /// Panics if `total_servers == 0`.
    #[must_use]
    pub fn for_cluster(total_servers: usize, server_capacity_ops: f64) -> Self {
        assert!(total_servers > 0, "cluster must have at least one server");
        PolicyConfig {
            total_servers,
            min_servers: 1,
            server_capacity_ops,
            points: SetPoints::paper_defaults(),
            scale_up_util: 0.75,
            scale_down_util: 0.55,
            max_step: 2,
            cooldown: Duration::from_secs(60),
        }
    }

    fn validate(&self) {
        assert!(
            (1..=self.total_servers).contains(&self.min_servers),
            "min_servers must be within 1..=total_servers"
        );
        assert!(
            self.server_capacity_ops > 0.0,
            "server capacity must be positive"
        );
        assert!(
            self.scale_down_util < self.scale_up_util,
            "scale_down_util must sit below scale_up_util (the dead band)"
        );
        assert!(self.max_step >= 1, "max_step must allow some movement");
    }
}

/// What the policy measured this tick.
#[derive(Debug, Clone, Copy)]
pub struct PolicyInput {
    /// Servers currently active (serving the ring).
    pub active: usize,
    /// Aggregate cluster request rate, ops/s.
    pub ops_per_sec: f64,
    /// Windowed cluster p99 command latency; `None` when no commands
    /// landed this window (an idle cluster has no delay to violate).
    pub p99: Option<Duration>,
}

/// Why the policy held n where it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HoldReason {
    /// Load sits inside the hysteresis dead band (or delay vetoed a
    /// shrink that utilization alone would have allowed).
    Steady,
    /// A transition window closed less than a cooldown ago.
    Cooldown,
    /// Growth is needed but every provisioned server is already on.
    AtCeiling,
    /// Shrink is possible but n is already at the floor.
    AtFloor,
}

/// One provisioning decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Keep the current n.
    Hold(HoldReason),
    /// Move the active set from `from` to `to` servers.
    Scale {
        /// Current active count.
        from: usize,
        /// Chosen active count (`to != from`).
        to: usize,
    },
}

impl Decision {
    /// Signed requested movement: `to - from` for a scale, 0 for a
    /// hold. Monotonicity tests order decisions by this.
    #[must_use]
    pub fn delta(&self) -> i64 {
        match *self {
            Decision::Hold(_) => 0,
            Decision::Scale { from, to } => to as i64 - from as i64,
        }
    }
}

/// The wall-clock feedback policy. Pure decision logic: no sockets, no
/// clocks of its own — the caller supplies `now` and the measurements,
/// which is what makes the hysteresis/cooldown/ramp properties unit-
/// testable.
#[derive(Debug, Clone)]
pub struct WallPolicy {
    config: PolicyConfig,
    last_window_closed: Option<Instant>,
}

impl WallPolicy {
    /// A policy with no transition history (first decision is never in
    /// cooldown).
    ///
    /// # Panics
    ///
    /// Panics on an inconsistent [`PolicyConfig`] (inverted band, zero
    /// capacity, `min_servers` outside the cluster).
    #[must_use]
    pub fn new(config: PolicyConfig) -> Self {
        config.validate();
        WallPolicy {
            config,
            last_window_closed: None,
        }
    }

    /// The configuration this policy runs with.
    #[must_use]
    pub fn config(&self) -> &PolicyConfig {
        &self.config
    }

    /// Tells the policy a transition window just closed; decisions
    /// within [`PolicyConfig::cooldown`] of this instant hold.
    pub fn record_window_closed(&mut self, now: Instant) {
        self.last_window_closed = Some(now);
    }

    /// Whether `now` still falls inside the post-transition cooldown.
    #[must_use]
    pub fn in_cooldown(&self, now: Instant) -> bool {
        self.last_window_closed
            .is_some_and(|closed| now.saturating_duration_since(closed) < self.config.cooldown)
    }

    /// Decides what n should be, given this tick's measurements.
    pub fn decide(&self, now: Instant, input: &PolicyInput) -> Decision {
        let cfg = &self.config;
        let n = input.active.clamp(cfg.min_servers, cfg.total_servers);
        if self.in_cooldown(now) {
            return Decision::Hold(HoldReason::Cooldown);
        }
        let delay = match input.p99 {
            // No samples ⇒ no delay pressure: classify as the deepest
            // headroom so an idle cluster is free to shrink.
            None => DelaySignal::Headroom,
            Some(p99) => cfg.points.classify(duration_ns(p99)),
        };

        // Hard guard first: a violated delay bound forces growth with a
        // step proportional to the overshoot, regardless of what the
        // utilization band says (the paper's Fig. 9 delay spikes come
        // exactly from under-provisioning that load metrics lag on).
        if matches!(delay, DelaySignal::Overload) {
            let ratio = input
                .p99
                .map_or(1.0, |p99| cfg.points.overshoot(duration_ns(p99)));
            let step = (((ratio - 1.0) * n as f64).ceil() as usize).clamp(1, cfg.max_step);
            let to = (n + step).min(cfg.total_servers);
            return if to == n {
                Decision::Hold(HoldReason::AtCeiling)
            } else {
                Decision::Scale { from: n, to }
            };
        }

        let util = |servers: usize| input.ops_per_sec / (servers as f64 * cfg.server_capacity_ops);
        if util(n) > cfg.scale_up_util {
            // Grow until utilization re-enters the band, ramp-limited.
            let mut to = n;
            while to < cfg.total_servers && to - n < cfg.max_step && util(to) > cfg.scale_up_util {
                to += 1;
            }
            return if to == n {
                Decision::Hold(HoldReason::AtCeiling)
            } else {
                Decision::Scale { from: n, to }
            };
        }

        // Shrink wants both signals green: the smaller cluster must
        // stay under the low-water mark *and* the measured delay must
        // sit below the reference (InBand means "fine where we are,
        // not fine with less").
        if matches!(delay, DelaySignal::Headroom) {
            let mut to = n;
            while to > cfg.min_servers
                && n - to < cfg.max_step
                && util(to - 1) <= cfg.scale_down_util
            {
                to -= 1;
            }
            if to != n {
                return Decision::Scale { from: n, to };
            }
            if n == cfg.min_servers && util(n) <= cfg.scale_down_util {
                return Decision::Hold(HoldReason::AtFloor);
            }
        }
        Decision::Hold(HoldReason::Steady)
    }
}

fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> PolicyConfig {
        PolicyConfig {
            cooldown: Duration::from_secs(5),
            ..PolicyConfig::for_cluster(8, 100.0)
        }
    }

    fn input(active: usize, ops: f64, p99_ms: Option<u64>) -> PolicyInput {
        PolicyInput {
            active,
            ops_per_sec: ops,
            p99: p99_ms.map(Duration::from_millis),
        }
    }

    #[test]
    fn hysteresis_holds_n_under_load_noise() {
        // Mid-band: util 0.65 on n=4. ±10% noise keeps util within
        // [0.585, 0.715] — above the 0.55·(3/4)=0.41 down-trigger seen
        // from n=4, below the 0.75 up-trigger — so every sample holds.
        let policy = WallPolicy::new(config());
        let now = Instant::now();
        for i in 0..100 {
            let noise = 1.0 + 0.1 * f64::from(i - 50) / 50.0;
            let decision = policy.decide(now, &input(4, 260.0 * noise, Some(1)));
            assert_eq!(
                decision,
                Decision::Hold(HoldReason::Steady),
                "±10% load noise must not move n (sample {i})"
            );
        }
    }

    #[test]
    fn cooldown_prevents_back_to_back_transitions() {
        let mut policy = WallPolicy::new(config());
        let now = Instant::now();
        let overload = input(4, 260.0, Some(800));
        assert!(matches!(
            policy.decide(now, &overload),
            Decision::Scale { .. }
        ));
        policy.record_window_closed(now);
        assert_eq!(
            policy.decide(now + Duration::from_secs(1), &overload),
            Decision::Hold(HoldReason::Cooldown),
            "decisions inside the cooldown must hold"
        );
        assert!(
            matches!(
                policy.decide(now + Duration::from_secs(6), &overload),
                Decision::Scale { .. }
            ),
            "the cooldown must expire"
        );
    }

    #[test]
    fn ramp_limit_caps_movement_per_decision() {
        let policy = WallPolicy::new(config());
        let now = Instant::now();
        // Load collapses to near zero from n=8: want 1, allowed -2.
        match policy.decide(now, &input(8, 5.0, Some(1))) {
            Decision::Scale { from: 8, to } => assert_eq!(to, 6, "shrink capped at max_step"),
            other => panic!("expected capped shrink, got {other:?}"),
        }
        // Massive overload from n=2: overshoot says more, allowed +2.
        match policy.decide(now, &input(2, 700.0, Some(5_000))) {
            Decision::Scale { from: 2, to } => assert_eq!(to, 4, "growth capped at max_step"),
            other => panic!("expected capped growth, got {other:?}"),
        }
        // Utilization-driven growth is capped too.
        match policy.decide(now, &input(2, 790.0, Some(1))) {
            Decision::Scale { from: 2, to } => assert_eq!(to, 4),
            other => panic!("expected capped growth, got {other:?}"),
        }
    }

    #[test]
    fn decisions_are_monotone_in_measured_delay() {
        // Fixed light load that *permits* a shrink; sweep the p99 from
        // microseconds to seconds. The requested Δn must never decrease
        // as delay rises: shrink → hold → grow.
        let policy = WallPolicy::new(config());
        let now = Instant::now();
        let mut last_delta = i64::MIN;
        let mut seen = std::collections::BTreeSet::new();
        for p99_us in (0..2_000_000u64).step_by(9_973) {
            let decision = policy.decide(
                now,
                &PolicyInput {
                    active: 4,
                    ops_per_sec: 100.0,
                    p99: Some(Duration::from_micros(p99_us)),
                },
            );
            let delta = decision.delta();
            assert!(
                delta >= last_delta,
                "delay {p99_us}µs produced Δ{delta} after Δ{last_delta}"
            );
            last_delta = delta;
            seen.insert(delta);
        }
        assert!(seen.contains(&-2), "headroom delay must allow the shrink");
        assert!(seen.iter().any(|&d| d > 0), "overload delay must grow");
    }

    #[test]
    fn idle_window_reads_as_headroom_and_floor_is_respected() {
        let policy = WallPolicy::new(config());
        let now = Instant::now();
        match policy.decide(now, &input(2, 10.0, None)) {
            Decision::Scale { from: 2, to: 1 } => {}
            other => panic!("idle cluster should shrink, got {other:?}"),
        }
        assert_eq!(
            policy.decide(now, &input(1, 10.0, None)),
            Decision::Hold(HoldReason::AtFloor)
        );
    }

    #[test]
    fn in_band_delay_vetoes_a_utilization_shrink() {
        let policy = WallPolicy::new(config());
        let now = Instant::now();
        // Utilization alone would shrink (util(3)=0.33 ≤ 0.55), but a
        // p99 between reference and bound says capacity is not spare.
        assert_eq!(
            policy.decide(now, &input(4, 100.0, Some(450))),
            Decision::Hold(HoldReason::Steady)
        );
    }

    #[test]
    #[should_panic(expected = "dead band")]
    fn inverted_band_is_rejected() {
        let _ = WallPolicy::new(PolicyConfig {
            scale_up_util: 0.5,
            scale_down_util: 0.6,
            ..PolicyConfig::for_cluster(4, 100.0)
        });
    }
}
