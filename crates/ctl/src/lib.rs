//! The Proteus control plane: a closed feedback loop over live sockets.
//!
//! The paper's controller (Section V) watches measured load and delay
//! and resizes the active server set so the cluster draws power in
//! proportion to its load while holding the delay bound. This crate is
//! that loop, wall-clock native, wired to the real subsystems grown in
//! the rest of the workspace:
//!
//! - **Observe** — a shared [`proteus_agg::ClusterObserver`] merges
//!   every server's `/metrics.json` into one snapshot; its
//!   [`ControlSignal`](proteus_agg::ControlSignal) carries aggregate
//!   ops/s and the *windowed* cluster p99 (delta of cumulative merged
//!   histograms — the delay of this tick's commands, not of history).
//! - **Decide** — [`WallPolicy`], the paper's reference/bound set
//!   points ([`proteus_core::SetPoints`]) plus the guard rails a live
//!   loop needs: a utilization hysteresis band, a per-decision ramp
//!   limit, and a post-transition cooldown.
//! - **Actuate** — [`ClusterController`] drives
//!   [`proteus_net::ClusterClient`]'s smooth-transition machinery
//!   (digest broadcast, dual-mapping drain window, power-off) and
//!   stamps every decision onto the shared trace ring as a
//!   [`ControllerDecision`](proteus_obs::TraceKind::ControllerDecision)
//!   event before the transition events it causes.
//!
//! The `proteus-controller` binary runs the loop as a daemon against a
//! deployed cluster; paired with
//! [`proteus_workload::CompressedDay`] it replays the paper's 24-hour
//! experiment in minutes (Figs. 10–11).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod policy;

pub use controller::{ActuationConfig, ClusterController, StepAction, StepReport};
pub use policy::{Decision, HoldReason, PolicyConfig, PolicyInput, WallPolicy};
