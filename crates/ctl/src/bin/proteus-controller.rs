//! The Proteus power-control daemon.
//!
//! ```text
//! proteus-controller --cache ADDR[,ADDR...] --metrics ADDR[,ADDR...]
//!                    [--bind ADDR] [--tick-ms N] [--capacity-ops N]
//!                    [--min-servers N] [--max-step N] [--cooldown-ms N]
//!                    [--boot-delay-ms N] [--drain-ms N]
//! ```
//!
//! Closes the paper's feedback loop against a live deployment: every
//! tick it scrapes all `--metrics` endpoints into one merged snapshot,
//! decides n(t) from measured ops/s and windowed p99 against the
//! reference/bound set points, and actuates transitions on the
//! `--cache` servers through the digest-broadcast/drain machinery. The
//! i-th `--metrics` address must belong to the i-th `--cache` server
//! (provisioning order).
//!
//! Its own listener re-exposes the merged `proteus_cluster_*` series
//! and the decision/transition trace at `/trace.jsonl`.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;
use proteus_agg::{ClusterObserver, ObserverConfig};
use proteus_ctl::{ActuationConfig, ClusterController, PolicyConfig, StepAction, WallPolicy};
use proteus_net::ClusterClient;
use proteus_obs::{MetricsServer, ScrapeLimits};

struct Options {
    cache: Vec<SocketAddr>,
    metrics: Vec<SocketAddr>,
    bind: String,
    tick: Duration,
    capacity_ops: f64,
    min_servers: usize,
    max_step: usize,
    cooldown: Duration,
    actuation: ActuationConfig,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        cache: Vec::new(),
        metrics: Vec::new(),
        bind: "127.0.0.1:9902".to_string(),
        tick: Duration::from_secs(1),
        capacity_ops: 50_000.0,
        min_servers: 1,
        max_step: 2,
        cooldown: Duration::from_secs(60),
        actuation: ActuationConfig::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        let millis = |name: &str, v: String| {
            v.parse::<u64>()
                .map(Duration::from_millis)
                .map_err(|_| format!("{name} must be a number of milliseconds"))
        };
        let addrs = |name: &str, v: String| {
            v.split(',')
                .map(|part| {
                    part.trim()
                        .parse::<SocketAddr>()
                        .map_err(|_| format!("{name}: bad address `{part}`"))
                })
                .collect::<Result<Vec<_>, _>>()
        };
        match flag.as_str() {
            "--cache" => opts.cache = addrs("--cache", value("--cache")?)?,
            "--metrics" => opts.metrics = addrs("--metrics", value("--metrics")?)?,
            "--bind" => opts.bind = value("--bind")?,
            "--tick-ms" => opts.tick = millis("--tick-ms", value("--tick-ms")?)?,
            "--capacity-ops" => {
                opts.capacity_ops = value("--capacity-ops")?
                    .parse()
                    .map_err(|_| "--capacity-ops must be a number".to_string())?;
            }
            "--min-servers" => {
                opts.min_servers = value("--min-servers")?
                    .parse()
                    .map_err(|_| "--min-servers must be a number".to_string())?;
            }
            "--max-step" => {
                opts.max_step = value("--max-step")?
                    .parse()
                    .map_err(|_| "--max-step must be a number".to_string())?;
            }
            "--cooldown-ms" => opts.cooldown = millis("--cooldown-ms", value("--cooldown-ms")?)?,
            "--boot-delay-ms" => {
                opts.actuation.boot_delay = millis("--boot-delay-ms", value("--boot-delay-ms")?)?;
            }
            "--drain-ms" => opts.actuation.drain = millis("--drain-ms", value("--drain-ms")?)?,
            "--help" | "-h" => {
                return Err("usage: proteus-controller --cache ADDR[,ADDR...] \
                            --metrics ADDR[,ADDR...] [--bind ADDR] [--tick-ms N] \
                            [--capacity-ops N] [--min-servers N] [--max-step N] \
                            [--cooldown-ms N] [--boot-delay-ms N] [--drain-ms N]"
                    .to_string());
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.cache.is_empty() {
        return Err("--cache requires at least one server".to_string());
    }
    if opts.cache.len() != opts.metrics.len() {
        return Err("--metrics must list one endpoint per --cache server, in order".to_string());
    }
    if opts.capacity_ops <= 0.0 {
        return Err("--capacity-ops must be positive".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let n = opts.cache.len();
    let client =
        match ClusterClient::connect(&opts.cache, proteus_core::Scenario::Proteus.strategy(n, 0)) {
            Ok(c) => Arc::new(RwLock::new(c)),
            Err(e) => {
                eprintln!("failed to connect to cache servers: {e}");
                return ExitCode::FAILURE;
            }
        };
    let observer = Arc::new(ClusterObserver::new(ObserverConfig {
        interval: opts.tick,
        server_capacity_ops: opts.capacity_ops,
        ..ObserverConfig::default()
    }));
    for &addr in &opts.metrics {
        observer.add_server(addr);
    }
    let tracer = Arc::clone(client.read().tracer());
    let policy = WallPolicy::new(PolicyConfig {
        min_servers: opts.min_servers.clamp(1, n),
        max_step: opts.max_step.max(1),
        cooldown: opts.cooldown,
        ..PolicyConfig::for_cluster(n, opts.capacity_ops)
    });
    let mut controller = ClusterController::new(
        Arc::clone(&observer),
        client,
        opts.metrics.clone(),
        policy,
        opts.actuation,
    );
    let _exposition = match MetricsServer::spawn_traced(
        &opts.bind,
        observer.metric_source(),
        tracer,
        ScrapeLimits::default(),
    ) {
        Ok(m) => {
            println!(
                "proteus-controller steering {n} server(s); cluster view at \
                 http://{0}/metrics.json, decision trace at http://{0}/trace.jsonl",
                m.local_addr()
            );
            m
        }
        Err(e) => {
            eprintln!("failed to bind {}: {e}", opts.bind);
            return ExitCode::FAILURE;
        }
    };
    loop {
        let report = controller.step();
        match report.action {
            StepAction::BootScheduled { from, to } => {
                println!("decision: scale {from} -> {to} (booting)");
            }
            StepAction::WindowOpened { from, to } => {
                println!("transition window open: {from} -> {to}");
            }
            StepAction::WindowClosed { from, to } => {
                println!("transition complete: {from} -> {to}");
            }
            _ => {}
        }
        std::thread::sleep(opts.tick);
    }
}
