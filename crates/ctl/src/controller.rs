//! The actuating controller: one [`step`](ClusterController::step) per
//! tick closes the observe → decide → actuate loop on real sockets.
//!
//! Each step pulls a fresh merged snapshot from the
//! [`ClusterObserver`], runs the [`WallPolicy`], and drives the
//! [`ClusterClient`]'s transition machinery through the paper's
//! lifecycle: a scale-up waits out the boot delay (joining servers
//! marked [`PowerState::Booting`]) before the digest broadcast; a
//! scale-down opens the window immediately and marks the departing
//! servers [`PowerState::Draining`]; when the drain window elapses the
//! controller closes it, powers the departed servers off in the energy
//! account, and starts the policy cooldown.
//!
//! Every actuated decision is recorded as a
//! [`TraceKind::ControllerDecision`] event on the cluster client's
//! shared trace ring *before* the transition events it causes, so the
//! exported `/trace.jsonl` reads as cause → effect in seq order.
//!
//! "Power off" here is logical: the observer's energy meter and the
//! routing exclude the server, while the process keeps running (this
//! reproduction cannot cut wall power). That is safe for correctness
//! because a powered-off server is never routed to; it only means the
//! testbed's physical idle draw is not actually saved.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;
use proteus_agg::{ClusterObserver, ControlSignal};
use proteus_core::PowerState;
use proteus_net::ClusterClient;
use proteus_obs::TraceKind;

use crate::policy::{Decision, HoldReason, PolicyInput, WallPolicy};

/// Timing knobs for the actuation side of the loop (the decision side
/// lives in [`PolicyConfig`](crate::PolicyConfig)).
#[derive(Debug, Clone, Copy)]
pub struct ActuationConfig {
    /// How long a joining server "boots" before it may serve (the
    /// paper models boot as a powered, non-serving state).
    pub boot_delay: Duration,
    /// How long a transition window stays open for hot keys to
    /// migrate before the old mapping is retired.
    pub drain: Duration,
}

impl Default for ActuationConfig {
    fn default() -> Self {
        ActuationConfig {
            boot_delay: Duration::from_millis(500),
            drain: Duration::from_secs(2),
        }
    }
}

/// What one controller step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepAction {
    /// The policy held n; no window is open.
    Held(HoldReason),
    /// A scale-up was decided; joining servers are booting until the
    /// deadline, then the window opens.
    BootScheduled {
        /// Current active count.
        from: usize,
        /// Target active count.
        to: usize,
    },
    /// Still waiting for joining servers to finish booting.
    BootWait,
    /// A transition window was opened this step.
    WindowOpened {
        /// Active count under the old mapping.
        from: usize,
        /// Active count under the new mapping.
        to: usize,
    },
    /// A window is open; hot keys are draining to the new mapping.
    DrainWait,
    /// The window was closed this step; departing servers powered off.
    WindowClosed {
        /// Active count before the whole transition.
        from: usize,
        /// Active count now.
        to: usize,
    },
    /// The client reported a transition window the controller did not
    /// open (foreign actuation); the controller backed off this step
    /// instead of erroring.
    BackedOff,
}

/// One step's observations and the action taken on them.
#[derive(Debug, Clone, Copy)]
pub struct StepReport {
    /// The control signal measured this step.
    pub signal: ControlSignal,
    /// What the controller did about it.
    pub action: StepAction,
}

#[derive(Debug, Clone, Copy)]
enum Pending {
    Boot { to: usize, deadline: Instant },
    Drain { from: usize, deadline: Instant },
}

/// The closed-loop controller daemon core.
///
/// Owns the policy state and the pending-transition machinery; shares
/// the [`ClusterObserver`] (metrics plane) and the [`ClusterClient`]
/// (data plane) with whatever else is using them — the client sits
/// behind an `RwLock` so workload threads keep fetching through reads
/// while the controller takes brief write locks to open/close windows.
pub struct ClusterController {
    observer: Arc<ClusterObserver>,
    client: Arc<RwLock<ClusterClient>>,
    /// Metrics endpoint per server index, for power-state bookkeeping.
    metrics_addrs: Vec<SocketAddr>,
    policy: WallPolicy,
    actuation: ActuationConfig,
    pending: Option<Pending>,
    decisions: u64,
    backoffs: u64,
}

impl ClusterController {
    /// Wires a controller to a live observer and cluster client.
    /// `metrics_addrs[i]` must be the metrics endpoint of the server
    /// the client knows as index `i` — the controller uses it to tell
    /// the observer which servers boot, drain, and power off.
    ///
    /// # Panics
    ///
    /// Panics if `metrics_addrs` does not cover the policy's
    /// `total_servers`.
    #[must_use]
    pub fn new(
        observer: Arc<ClusterObserver>,
        client: Arc<RwLock<ClusterClient>>,
        metrics_addrs: Vec<SocketAddr>,
        policy: WallPolicy,
        actuation: ActuationConfig,
    ) -> Self {
        assert_eq!(
            metrics_addrs.len(),
            policy.config().total_servers,
            "one metrics endpoint per provisioned server"
        );
        ClusterController {
            observer,
            client,
            metrics_addrs,
            policy,
            actuation,
            pending: None,
            decisions: 0,
            backoffs: 0,
        }
    }

    /// Scale decisions actuated so far.
    #[must_use]
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Steps the controller skipped because a foreign transition
    /// window was open (see [`StepAction::BackedOff`]).
    #[must_use]
    pub fn backoffs(&self) -> u64 {
        self.backoffs
    }

    /// Whether a boot or drain phase is in flight.
    #[must_use]
    pub fn transition_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Runs one observe → decide → actuate round at the current wall
    /// clock.
    pub fn step(&mut self) -> StepReport {
        self.step_at(Instant::now())
    }

    /// [`step`](Self::step) with an explicit `now`, the seam the tests
    /// drive phase deadlines through.
    pub fn step_at(&mut self, now: Instant) -> StepReport {
        let snapshot = self.observer.tick();
        let signal = snapshot.control_signal();

        let action = match self.pending {
            Some(Pending::Boot { to, deadline }) => {
                if now < deadline {
                    StepAction::BootWait
                } else {
                    self.open_window_at(to, now)
                }
            }
            Some(Pending::Drain { from, deadline }) => {
                if now < deadline {
                    StepAction::DrainWait
                } else {
                    self.close_window(from, now)
                }
            }
            None => self.decide_and_actuate(now, &signal),
        };
        StepReport { signal, action }
    }

    fn decide_and_actuate(&mut self, now: Instant, signal: &ControlSignal) -> StepAction {
        // Satellite of the transition-status accessor: if some other
        // actor opened a window on the shared client, back off rather
        // than eat a TransitionInProgress error.
        if self.client.read().transition_active() {
            self.backoffs += 1;
            return StepAction::BackedOff;
        }
        let active = self.client.read().active();
        let input = PolicyInput {
            active,
            ops_per_sec: signal.ops_per_sec,
            p99: signal.p99,
        };
        let decision = self.policy.decide(now, &input);
        let Decision::Scale { from, to } = decision else {
            let Decision::Hold(reason) = decision else {
                unreachable!()
            };
            return StepAction::Held(reason);
        };

        // The decision event precedes the transition events it causes.
        self.record_decision(from, to, signal);
        self.decisions += 1;
        if to > from {
            // Joining servers boot before they serve.
            for addr in &self.metrics_addrs[from..to] {
                self.observer.set_power_state(*addr, PowerState::Booting);
            }
            self.pending = Some(Pending::Boot {
                to,
                deadline: now + self.actuation.boot_delay,
            });
            StepAction::BootScheduled { from, to }
        } else {
            self.open_window_at(to, now)
        }
    }

    fn open_window_at(&mut self, to: usize, now: Instant) -> StepAction {
        let mut client = self.client.write();
        let from = client.active();
        match client.begin_transition(to) {
            Ok(()) => {}
            Err(_) => {
                // A foreign window raced us between the check and the
                // write lock; surface it as a backoff, not a failure.
                drop(client);
                self.pending = None;
                self.backoffs += 1;
                return StepAction::BackedOff;
            }
        }
        drop(client);
        for (i, addr) in self.metrics_addrs.iter().enumerate() {
            let state = if i < to.min(from) {
                continue; // staying active, state unchanged
            } else if i < to {
                PowerState::On // finished booting, now serving
            } else if i < from {
                PowerState::Draining
            } else {
                continue; // already off
            };
            self.observer.set_power_state(*addr, state);
        }
        self.pending = Some(Pending::Drain {
            from,
            deadline: now + self.actuation.drain,
        });
        StepAction::WindowOpened { from, to }
    }

    fn close_window(&mut self, from: usize, now: Instant) -> StepAction {
        let closed = self.client.write().end_transition();
        let to = self.client.read().active();
        if let Some(status) = closed {
            if status.to < status.from {
                // Drain complete: the departed servers power off for
                // real (in the energy account — the paper's actuation
                // point). A grow's close has nobody to power down.
                for addr in &self.metrics_addrs[status.to..status.from] {
                    self.observer.set_power_state(*addr, PowerState::Off);
                }
            }
        }
        self.policy.record_window_closed(now);
        self.pending = None;
        StepAction::WindowClosed { from, to }
    }

    fn record_decision(&self, from: usize, to: usize, signal: &ControlSignal) {
        let p99_us = signal
            .p99
            .map_or(0, |d| u32::try_from(d.as_micros()).unwrap_or(u32::MAX));
        let ops = if signal.ops_per_sec.is_finite() && signal.ops_per_sec > 0.0 {
            if signal.ops_per_sec >= f64::from(u32::MAX) {
                u32::MAX
            } else {
                signal.ops_per_sec as u32
            }
        } else {
            0
        };
        self.client
            .read()
            .tracer()
            .record(TraceKind::ControllerDecision {
                from: from as u32,
                to: to as u32,
                p99_us,
                ops,
            });
    }
}

impl std::fmt::Debug for ClusterController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterController")
            .field("servers", &self.metrics_addrs.len())
            .field("pending", &self.pending)
            .field("decisions", &self.decisions)
            .field("backoffs", &self.backoffs)
            .finish_non_exhaustive()
    }
}
