//! Live actuation: the controller drives a real 4-server TCP cluster
//! through a shrink and a grow, with the decision trace preceding the
//! transitions it causes and the observer's power accounting following
//! along.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use proteus_agg::{ClusterObserver, ObserverConfig};
use proteus_cache::CacheConfig;
use proteus_core::{PowerState, Scenario};
use proteus_ctl::{
    ActuationConfig, ClusterController, HoldReason, PolicyConfig, StepAction, WallPolicy,
};
use proteus_net::{CacheServer, ClusterClient};
use proteus_obs::{MetricsServer, TraceKind};
use proteus_store::{ShardedStore, StoreConfig};

const N: usize = 4;

struct Harness {
    servers: Vec<CacheServer>,
    endpoints: Vec<MetricsServer>,
    client: Arc<RwLock<ClusterClient>>,
    observer: Arc<ClusterObserver>,
}

fn harness(capacity_ops: f64) -> Harness {
    let servers: Vec<CacheServer> = (0..N)
        .map(|_| CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(8 << 20)).unwrap())
        .collect();
    let addrs: Vec<std::net::SocketAddr> = servers.iter().map(CacheServer::addr).collect();
    let endpoints: Vec<MetricsServer> = servers
        .iter()
        .map(|s| MetricsServer::spawn("127.0.0.1:0", s.metric_source()).unwrap())
        .collect();
    let client = Arc::new(RwLock::new(
        ClusterClient::connect(&addrs, Scenario::Proteus.strategy(N, 0)).unwrap(),
    ));
    let observer = Arc::new(ClusterObserver::new(ObserverConfig {
        connect_timeout: Duration::from_millis(500),
        read_timeout: Duration::from_secs(2),
        server_capacity_ops: capacity_ops,
        ..ObserverConfig::default()
    }));
    for endpoint in &endpoints {
        observer.add_server(endpoint.local_addr());
    }
    Harness {
        servers,
        endpoints,
        client,
        observer,
    }
}

#[test]
fn controller_shrinks_and_grows_a_live_cluster() {
    let h = harness(100.0);
    let db = Mutex::new(ShardedStore::new(StoreConfig {
        object_size: 128,
        ..StoreConfig::default()
    }));
    let keys: Vec<Vec<u8>> = (0..200u32)
        .map(|i| format!("page:{i}").into_bytes())
        .collect();
    for k in &keys {
        h.client.read().fetch(k, &db).unwrap();
    }

    let policy = WallPolicy::new(PolicyConfig {
        min_servers: 1,
        max_step: 2,
        cooldown: Duration::from_millis(300),
        ..PolicyConfig::for_cluster(N, 100.0)
    });
    let actuation = ActuationConfig {
        boot_delay: Duration::from_millis(100),
        drain: Duration::from_millis(100),
    };
    let mut controller = ClusterController::new(
        Arc::clone(&h.observer),
        Arc::clone(&h.client),
        h.endpoints.iter().map(MetricsServer::local_addr).collect(),
        policy,
        actuation,
    );

    // Step 1: idle cluster (no rate deltas yet, sub-ms p99) — the
    // policy shrinks, ramp-capped at 2, and the window opens at once.
    let t0 = Instant::now();
    let report = controller.step_at(t0);
    assert_eq!(
        report.action,
        StepAction::WindowOpened { from: N, to: N - 2 },
        "idle cluster must shed max_step servers"
    );
    assert!(controller.transition_pending());

    // Step 2, past the drain deadline: the window closes, the departed
    // servers power off, the cooldown starts.
    let report = controller.step_at(t0 + Duration::from_millis(150));
    assert_eq!(
        report.action,
        StepAction::WindowClosed { from: N, to: N - 2 }
    );
    // The step's own snapshot predates the close; take a fresh tick to
    // see the power-off land.
    let snap = h.observer.tick();
    assert_eq!(snap.active_servers, N - 2);
    assert_eq!(snap.servers[N - 1].power_state, PowerState::Off);
    assert_eq!(snap.servers[N - 2].power_state, PowerState::Off);
    assert_eq!(h.client.read().active(), N - 2);

    // Step 3, inside the cooldown: held no matter what.
    let report = controller.step_at(t0 + Duration::from_millis(250));
    assert_eq!(report.action, StepAction::Held(HoldReason::Cooldown));

    // Burst of load on the shrunken cluster: utilization on 2 servers
    // of capacity 100 ops/s blows past the up-trigger.
    for _ in 0..5 {
        for k in &keys {
            h.client.read().fetch(k, &db).unwrap();
        }
    }

    // Step 4, past the cooldown: scale-up decided; joining servers
    // boot first.
    let report = controller.step_at(t0 + Duration::from_millis(700));
    assert_eq!(
        report.action,
        StepAction::BootScheduled { from: N - 2, to: N },
        "overloaded cluster must grow (signal: {:?})",
        report.signal
    );
    assert!(report.signal.ops_per_sec > 100.0);
    let snap = h.observer.tick();
    assert_eq!(snap.servers[N - 1].power_state, PowerState::Booting);

    // Step 5, mid-boot: still waiting.
    let report = controller.step_at(t0 + Duration::from_millis(750));
    assert_eq!(report.action, StepAction::BootWait);

    // Step 6, boot done: the window opens; step 7 closes it.
    let report = controller.step_at(t0 + Duration::from_millis(900));
    assert_eq!(
        report.action,
        StepAction::WindowOpened { from: N - 2, to: N }
    );
    let report = controller.step_at(t0 + Duration::from_millis(1100));
    assert_eq!(
        report.action,
        StepAction::WindowClosed { from: N - 2, to: N }
    );
    assert_eq!(controller.decisions(), 2);
    assert_eq!(controller.backoffs(), 0);
    let snap = h.observer.tick();
    assert_eq!(snap.active_servers, N);
    assert!(snap.servers.iter().all(|s| s.power_state == PowerState::On));

    // The decision events precede the transitions they actuated, on
    // one seq-ordered ring.
    let client = h.client.read();
    let events = client.tracer().events();
    let decisions: Vec<_> = events
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::ControllerDecision { .. }))
        .collect();
    assert_eq!(decisions.len(), 2, "one decision event per actuation");
    for event in &decisions {
        let next_begin = events
            .iter()
            .find(|e| e.seq > event.seq && matches!(e.kind, TraceKind::TransitionBegin { .. }))
            .expect("every decision is followed by its transition");
        if let (
            TraceKind::ControllerDecision { from, to, .. },
            TraceKind::TransitionBegin {
                from: t_from,
                to: t_to,
            },
        ) = (&event.kind, &next_begin.kind)
        {
            assert_eq!((from, to), (t_from, t_to), "decision matches actuation");
        }
    }
    drop(client);

    drop(h.endpoints);
    for s in h.servers {
        s.stop();
    }
}

#[test]
fn controller_backs_off_from_a_foreign_transition_window() {
    let h = harness(100.0);
    // Someone else (an operator, another controller) opens a window on
    // the shared client.
    h.client.write().begin_transition(N - 1).unwrap();

    let policy = WallPolicy::new(PolicyConfig {
        cooldown: Duration::from_millis(100),
        ..PolicyConfig::for_cluster(N, 100.0)
    });
    let mut controller = ClusterController::new(
        Arc::clone(&h.observer),
        Arc::clone(&h.client),
        h.endpoints.iter().map(MetricsServer::local_addr).collect(),
        policy,
        ActuationConfig::default(),
    );
    let report = controller.step_at(Instant::now());
    assert_eq!(report.action, StepAction::BackedOff);
    assert_eq!(controller.backoffs(), 1);
    assert_eq!(controller.decisions(), 0);
    assert!(!controller.transition_pending());

    // Once the foreign window closes, the controller is free again.
    h.client.write().end_transition();
    let report = controller.step_at(Instant::now() + Duration::from_secs(1));
    assert!(
        !matches!(report.action, StepAction::BackedOff),
        "freed client must not read as busy: {:?}",
        report.action
    );

    drop(h.endpoints);
    for s in h.servers {
        s.stop();
    }
}
