//! A full simulated "Wikipedia day" under dynamic provisioning.
//!
//! Synthesizes a diurnal session trace (peak ≈ 2× nadir, Zipf pages),
//! derives the provisioning plan the way Fig. 4 does, then replays the
//! identical trace through all four Table II scenarios and prints a
//! per-slot report: request volume, active servers, load-balance ratio
//! (Fig. 5), and the worst 99.9th-percentile response time (Fig. 9).
//!
//! Run with: `cargo run --release --example wikipedia_day`

use proteus::core::{ClusterConfig, ClusterSim, ProvisioningPlan, Scenario};
use proteus::workload::Trace;

fn main() {
    let mut config = ClusterConfig::paper_scale();
    config.slots = 24; // a lighter day for an example run
    let mean_rate = 2500.0;
    println!(
        "synthesizing a {}-slot day at {:.0} req/s mean...",
        config.slots, mean_rate
    );
    let trace = Trace::synthesize(&config.trace_config(mean_rate), 42);
    let volumes = trace.requests_per_slot(config.slot, config.slots);
    let plan = ProvisioningPlan::load_proportional(&volumes, config.cache_servers, 4);
    println!(
        "trace: {} requests; plan: {:?} ({} transitions)\n",
        trace.len(),
        plan.counts(),
        plan.transitions()
    );

    let reports: Vec<_> = Scenario::all()
        .into_iter()
        .map(|sc| {
            let report = ClusterSim::new(config.clone(), sc, &trace, &plan, 7).run();
            (sc, report)
        })
        .collect();

    // Per-slot table (Figs. 4 + 5 combined).
    println!("slot  requests  n(t)  | balance min/max per scenario");
    println!(
        "                      | {:>10} {:>10} {:>14} {:>10}",
        "static", "naive", "consistent-n2", "proteus"
    );
    for (slot, &volume) in volumes.iter().enumerate() {
        print!("{:>4}  {:>8}  {:>4}  |", slot, volume, plan.active_at(slot));
        for (_, report) in &reports {
            let ratio = report.balance_ratio_per_slot()[slot]
                .map_or("    -".to_string(), |r| format!("{r:10.3}"));
            print!(" {ratio:>10}");
        }
        println!();
    }

    println!("\nscenario summary (Fig. 9's story):");
    println!(
        "{:<16} {:>9} {:>12} {:>14} {:>14} {:>10}",
        "scenario", "hit%", "db fetches", "typical p99.9", "worst p99.9", "migrated"
    );
    for (sc, report) in &reports {
        println!(
            "{:<16} {:>8.1}% {:>12} {:>12.0}ms {:>12.0}ms {:>10}",
            sc.name(),
            report.counters.cache_hit_ratio() * 100.0,
            report.counters.database_total(),
            report
                .typical_bucket_quantile(0.999)
                .map_or(0.0, |d| d.as_millis_f64()),
            report
                .worst_bucket_quantile(0.999)
                .map_or(0.0, |d| d.as_millis_f64()),
            report.counters.migrated,
        );
    }
    println!(
        "\nProteus keeps the worst bucket near the static baseline while \
         provisioning dynamically — the paper's headline claim."
    );
}
