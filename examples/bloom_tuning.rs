//! Bloom filter digest tuning (Section IV-B, Figs. 6-8).
//!
//! Reproduces the paper's worked configuration example and then
//! *measures* false-positive and false-negative rates of real counting
//! filters at several sizes, next to the Eq. 4/5 predictions.
//!
//! Run with: `cargo run --release --example bloom_tuning`

use proteus::bloom::{config, BloomConfig, CountingBloomFilter, OverflowPolicy};

fn main() {
    // --- The paper's worked example (§IV-B). --------------------------
    let cfg = BloomConfig::optimal(10_000, 4, 1e-4, 1e-4);
    println!("paper example: κ=10⁴, h=4, p_p=p_n=10⁻⁴");
    println!(
        "  optimal l = {} counters, b = {} bits → {:.0} KB per digest \
         (paper: l≈4×10⁵, b=3, ≈150 KB)",
        cfg.counters,
        cfg.counter_bits,
        cfg.memory_bytes() as f64 / 1024.0
    );
    println!(
        "  broadcast snapshot: {:.0} KB (bit-array form)\n",
        cfg.snapshot_bytes() as f64 / 1024.0
    );

    // --- Measured vs predicted false positives (Fig. 7 flavour). ------
    let kappa = 50_000u64;
    println!("inserting κ={kappa} keys, h=4, b=4; varying filter memory:");
    println!(
        "{:>10} {:>14} {:>14} {:>14}",
        "memory", "predicted FP", "measured FP", "measured FN"
    );
    for kb in [16u64, 32, 64, 128, 256, 512] {
        let l = (kb * 1024 * 8 / 4) as usize; // 4-bit counters
        let cfg = BloomConfig::new(l, 4, 4);
        let mut filter = CountingBloomFilter::with_policy(cfg, OverflowPolicy::Wrap);
        for i in 0..kappa {
            filter.insert(&i.to_le_bytes());
        }
        let probes = 200_000u64;
        let fp = (kappa..kappa + probes)
            .filter(|i| filter.contains(&i.to_le_bytes()))
            .count() as f64
            / probes as f64;
        let fnr = (0..kappa)
            .filter(|i| !filter.contains(&i.to_le_bytes()))
            .count() as f64
            / kappa as f64;
        println!(
            "{:>8}KB {:>13.5} {:>13.5} {:>13.5}",
            kb,
            config::false_positive_rate(l, 4, kappa),
            fp,
            fnr
        );
    }
    println!(
        "\nAt 512 KB both error rates are negligible — the paper's chosen \
         digest size for its evaluation (§VI-B)."
    );
}
