//! Fault tolerance through replication (Section III-E).
//!
//! Builds the paper's replication extension — `r` hash rings over one
//! shared virtual-node placement — warms a cluster, crashes a server,
//! and shows that surviving replicas keep serving all but the
//! (Eq. 3-predictable) co-located fraction of keys.
//!
//! Run with: `cargo run --example replication`

use proteus::cache::{CacheConfig, CacheEngine};
use proteus::core::{ReplicaFetch, ReplicatedRouter};
use proteus::ring::ReplicatedPlacement;
use proteus::sim::SimTime;
use proteus::store::{ShardedStore, StoreConfig};

fn main() {
    let servers = 10;
    let replicas = 2;
    let router = ReplicatedRouter::new(servers, replicas, 42);
    let mut caches: Vec<CacheEngine> = (0..servers)
        .map(|_| CacheEngine::new(CacheConfig::with_capacity(64 << 20)))
        .collect();
    let mut db = ShardedStore::new(StoreConfig::default());
    let t = SimTime::ZERO;

    // Warm 2,000 pages; every page lands on each of its replicas.
    let keys: Vec<Vec<u8>> = (1..=2000u32)
        .map(|i| format!("page:{i}").into_bytes())
        .collect();
    let all_up = vec![false; servers];
    for key in &keys {
        router.fetch(key, t, &mut caches, &mut db, &all_up, servers);
    }
    println!(
        "warmed {} pages with r = {replicas} replicas ({} database fetches)",
        keys.len(),
        db.total_fetches()
    );

    // Eq. 3: expected fraction of keys with all replicas distinct.
    let pnc = ReplicatedPlacement::no_conflict_probability(replicas, servers);
    println!(
        "Eq. 3 no-conflict probability at n = {servers}: {pnc:.3} \
         (≈{:.0} keys have both replicas on one server)",
        (1.0 - pnc) * keys.len() as f64
    );

    // Crash s1: its memory is gone and it is marked down.
    println!("\n*** crashing s1 (cache cleared, marked down) ***");
    caches[0].clear();
    let mut down = vec![false; servers];
    down[0] = true;

    let db_before = db.total_fetches();
    let (mut via_replica, mut via_db) = (0u32, 0u32);
    for key in &keys {
        match router.fetch(key, t, &mut caches, &mut db, &down, servers).1 {
            ReplicaFetch::Hit { .. } => via_replica += 1,
            ReplicaFetch::Database => via_db += 1,
        }
    }
    println!(
        "after the crash: {via_replica} keys served by surviving replicas, \
         {via_db} refetched from the database ({} new DB fetches)",
        db.total_fetches() - db_before
    );
    println!(
        "loss fraction {:.3} vs Eq. 3's co-location estimate {:.3} × P(on s1) — \
         replication confines the damage to hash conflicts",
        f64::from(via_db) / keys.len() as f64,
        1.0 - pnc
    );

    // And the refetch healed everything for the next pass.
    let healed = keys
        .iter()
        .filter(|k| {
            matches!(
                router.fetch(k, t, &mut caches, &mut db, &down, servers).1,
                ReplicaFetch::Hit { .. }
            )
        })
        .count();
    println!(
        "second pass after healing: {healed}/{} replica hits",
        keys.len()
    );
}
