//! A live TCP cache cluster on localhost.
//!
//! Spins up four real cache servers speaking the memcached-flavoured
//! protocol (with the paper's `SET_BLOOM_FILTER` / `BLOOM_FILTER`
//! digest keys), warms them through an Algorithm 2 cluster client,
//! then performs a live smooth scale-down and shows that hot keys
//! migrate over the wire with zero database traffic.
//!
//! Run with: `cargo run --example tcp_cluster`

use parking_lot::Mutex;
use proteus::cache::CacheConfig;
use proteus::core::Scenario;
use proteus::net::{CacheServer, ClusterClient, ClusterFetch};
use proteus::store::{ShardedStore, StoreConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4;
    let servers: Vec<CacheServer> = (0..n)
        .map(|_| CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(16 << 20)))
        .collect::<Result<_, _>>()?;
    let addrs: Vec<_> = servers.iter().map(CacheServer::addr).collect();
    println!("cache servers listening:");
    for (i, addr) in addrs.iter().enumerate() {
        println!("  s{}: {addr}", i + 1);
    }

    let mut cluster = ClusterClient::connect(&addrs, Scenario::Proteus.strategy(n, 0))?;
    let db = Mutex::new(ShardedStore::new(StoreConfig::default()));

    // Warm 200 pages through the cluster.
    let keys: Vec<Vec<u8>> = (1..=200u32)
        .map(|i| format!("page:{i}").into_bytes())
        .collect();
    for key in &keys {
        cluster.fetch(key, &db)?;
    }
    println!(
        "\nwarmed {} pages ({} database fetches)",
        keys.len(),
        db.lock().total_fetches()
    );
    for (i, server) in servers.iter().enumerate() {
        let items = server.with_engine(|e| e.len());
        println!("  s{}: {items} items", i + 1);
    }

    // Live smooth scale-down: digests travel over the data protocol.
    let db_before = db.lock().total_fetches();
    cluster.begin_transition(3)?;
    println!("\nscaled 4 → 3 (digest snapshots fetched via get BLOOM_FILTER)");
    let mut hits = 0;
    let mut migrated = 0;
    let mut database = 0;
    for key in &keys {
        match cluster.fetch(key, &db)?.1 {
            ClusterFetch::Hit | ClusterFetch::ReplicaHit => hits += 1,
            ClusterFetch::Migrated => migrated += 1,
            ClusterFetch::Database | ClusterFetch::Degraded | ClusterFetch::FalsePositive => {
                database += 1;
            }
        }
    }
    println!("first pass: {hits} hits, {migrated} migrated over TCP, {database} database");
    assert_eq!(
        db.lock().total_fetches(),
        db_before,
        "hot keys must migrate, not refetch"
    );
    cluster.end_transition();

    // s4 can now power off.
    let mut servers = servers;
    let retired = servers.pop().expect("four servers");
    retired.stop();
    println!("s4 powered off; cluster serving on 3 servers");

    let mut hits = 0;
    for key in &keys {
        if cluster.fetch(key, &db)?.1 == ClusterFetch::Hit {
            hits += 1;
        }
    }
    println!(
        "second pass: {hits}/{} direct hits — migration amortized",
        keys.len()
    );
    for server in servers {
        server.stop();
    }
    println!("\ntcp_cluster OK");
    Ok(())
}
