//! Quickstart: the Proteus actuator in a nutshell.
//!
//! Builds a 4-server cache tier in front of a sharded store, warms it,
//! then performs a smooth scale-down (4 → 3) exactly as Section IV
//! prescribes: digests are broadcast, the mapping switches, and hot
//! data migrates on demand with **zero** database traffic.
//!
//! Run with: `cargo run --example quickstart`

use proteus::cache::{CacheConfig, CacheEngine};
use proteus::core::{FetchClass, Router, Scenario, TransitionManager};
use proteus::sim::{SimDuration, SimTime};
use proteus::store::{ShardedStore, StoreConfig};

fn main() {
    let servers = 4;
    let router = Router::new(Scenario::Proteus.strategy(servers, 0));
    let mut caches: Vec<CacheEngine> = (0..servers)
        .map(|_| CacheEngine::new(CacheConfig::with_capacity(64 << 20)))
        .collect();
    let mut db = ShardedStore::new(StoreConfig::default());
    let mut transition = TransitionManager::new(servers, servers);

    // --- Warm phase: 500 pages enter the cache through misses. -------
    let t0 = SimTime::ZERO;
    let keys: Vec<Vec<u8>> = (1..=500u32)
        .map(|i| format!("page:{i}").into_bytes())
        .collect();
    for key in &keys {
        router.fetch(key, t0, &mut caches, &mut db, &transition, true);
    }
    println!(
        "warmed {} pages; database fetches so far: {}",
        keys.len(),
        db.total_fetches()
    );
    for (i, cache) in caches.iter().enumerate() {
        println!(
            "  s{}: {} items, {} KiB",
            i + 1,
            cache.len(),
            cache.bytes_used() / 1024
        );
    }

    // --- Scale down 4 → 3, the Proteus way. --------------------------
    let t1 = t0 + SimDuration::from_secs(1);
    let db_before = db.total_fetches();
    transition.begin(t1, 3, SimDuration::from_secs(60), |i| {
        caches[i].digest_snapshot()
    });
    println!("\nscaling 4 → 3: digests broadcast, s4 draining for TTL");

    let mut classes = [0u32; 3]; // hits, migrations, database
    for key in &keys {
        let outcome = router.fetch(key, t1, &mut caches, &mut db, &transition, true);
        match outcome.class {
            FetchClass::NewHit => classes[0] += 1,
            FetchClass::Migrated => classes[1] += 1,
            FetchClass::Database | FetchClass::DatabaseFalsePositive => classes[2] += 1,
        }
    }
    println!(
        "first pass after the switch: {} direct hits, {} migrated on demand, {} database",
        classes[0], classes[1], classes[2]
    );
    assert_eq!(
        db.total_fetches(),
        db_before,
        "smooth transition must not touch the database for hot data"
    );

    // The migration is amortized: a second pass is all direct hits.
    let mut second_hits = 0;
    for key in &keys {
        if router
            .fetch(key, t1, &mut caches, &mut db, &transition, true)
            .class
            == FetchClass::NewHit
        {
            second_hits += 1;
        }
    }
    println!("second pass: {second_hits}/{} direct hits", keys.len());

    // After TTL the drained server powers off safely.
    for server in transition.finalize(t1 + SimDuration::from_secs(60)) {
        caches[server].clear();
        println!("s{} powered off (cache cleared)", server + 1);
    }
    println!("\nload per server with 3 active:");
    for (i, cache) in caches.iter().enumerate().take(3) {
        println!("  s{}: {} items", i + 1, cache.len());
    }
    println!("\nquickstart OK: zero delay penalty, minimal migration, balanced load.");
}
