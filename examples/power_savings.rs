//! Energy accounting across the four scenarios (Figs. 10 and 11).
//!
//! Runs the same trace and plan through Static, Naive, Consistent and
//! Proteus and prints the PDU-style power series plus total energy,
//! whole-cluster and cache-tier, reproducing the paper's ≈10%/≈23%
//! savings story — with Proteus saving as much as the disruptive
//! baselines while adding no delay penalty.
//!
//! Run with: `cargo run --release --example power_savings`

use proteus::core::{ClusterConfig, ClusterSim, ProvisioningPlan, Scenario};
use proteus::workload::Trace;

fn main() {
    let mut config = ClusterConfig::paper_scale();
    config.slots = 24;
    let trace = Trace::synthesize(&config.trace_config(2500.0), 42);
    let plan = ProvisioningPlan::load_proportional(
        &trace.requests_per_slot(config.slot, config.slots),
        config.cache_servers,
        4,
    );

    let mut static_total = 0.0;
    let mut static_cache = 0.0;
    println!(
        "{:<16} {:>12} {:>12} {:>14} {:>14} {:>12}",
        "scenario", "total Wh", "cache Wh", "total saved", "cache saved", "worst p99.9"
    );
    for sc in Scenario::all() {
        let report = ClusterSim::new(config.clone(), sc, &trace, &plan, 7).run();
        if sc == Scenario::Static {
            static_total = report.total_energy_wh();
            static_cache = report.cache_energy_wh();
        }
        let total_saved = 100.0 * (1.0 - report.total_energy_wh() / static_total);
        let cache_saved = 100.0 * (1.0 - report.cache_energy_wh() / static_cache);
        println!(
            "{:<16} {:>12.1} {:>12.1} {:>13.1}% {:>13.1}% {:>10.0}ms",
            sc.name(),
            report.total_energy_wh(),
            report.cache_energy_wh(),
            total_saved,
            cache_saved,
            report
                .worst_bucket_quantile(0.999)
                .map_or(0.0, |d| d.as_millis_f64()),
        );
        // A Fig. 10-style sparkline of cluster power over time.
        let samples = &report.power_samples;
        if !samples.is_empty() {
            let stride = (samples.len() / 60).max(1);
            let watts: Vec<f64> = samples.iter().step_by(stride).map(|s| s.1).collect();
            let lo = watts.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = watts.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#'];
            let line: String = watts
                .iter()
                .map(|&w| {
                    let idx = if hi > lo {
                        (((w - lo) / (hi - lo)) * (glyphs.len() - 1) as f64).round() as usize
                    } else {
                        0
                    };
                    glyphs[idx]
                })
                .collect();
            println!("    power {:4.0}-{:4.0} W  [{line}]", lo, hi);
        }
    }
    println!(
        "\nProteus matches Naive/Consistent energy savings while its worst \
         99.9th-percentile stays at the Static baseline (Fig. 11's takeaway)."
    );
}
