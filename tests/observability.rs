//! Acceptance tests for the live telemetry layer: the `stats proteus`
//! registry over real TCP must reconcile with what the client itself
//! observed, a provisioning transition must leave an ordered lifecycle
//! trace in the event ring, and the HTTP scrape endpoint must serve
//! the same registry in both exposition formats.

use std::collections::HashMap;
use std::io::{Read, Write};

use parking_lot::Mutex;
use proteus::cache::CacheConfig;
use proteus::net::{CacheClient, CacheServer, ClusterClient, ClusterFetch};
use proteus::obs::{FetchClassKind, MetricsServer, TraceKind};
use proteus::ring::ProteusPlacement;
use proteus::store::{ShardedStore, StoreConfig};

fn stat_map(pairs: Vec<(String, String)>) -> HashMap<String, String> {
    pairs.into_iter().collect()
}

fn stat_u64(stats: &HashMap<String, String>, key: &str) -> u64 {
    stats
        .get(key)
        .unwrap_or_else(|| panic!("registry missing {key}: {stats:?}"))
        .parse()
        .unwrap_or_else(|_| panic!("{key} not numeric"))
}

/// `stats proteus` over the wire reports exactly the operations this
/// client performed: command counts, hit/miss splits, connection
/// gauges, and per-command latency percentiles.
#[test]
fn stats_proteus_reconciles_with_client_observations() {
    let server = CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(8 << 20)).unwrap();
    let client = CacheClient::connect(server.addr()).unwrap();

    let mut client_hits = 0u64;
    let mut client_misses = 0u64;
    for i in 0..100u32 {
        client.set(format!("key:{i}").as_bytes(), b"value").unwrap();
    }
    for i in 0..100u32 {
        if client.get(format!("key:{i}").as_bytes()).unwrap().is_some() {
            client_hits += 1;
        }
    }
    for i in 0..20u32 {
        if client
            .get(format!("absent:{i}").as_bytes())
            .unwrap()
            .is_none()
        {
            client_misses += 1;
        }
    }

    let stats = stat_map(client.stats_proteus().unwrap());

    // Engine counters reconcile with the client's own observations.
    assert_eq!(stat_u64(&stats, "proteus_get_hits_total"), client_hits);
    assert_eq!(stat_u64(&stats, "proteus_get_misses_total"), client_misses);
    assert_eq!(stat_u64(&stats, "proteus_sets_total"), 100);
    assert_eq!(stat_u64(&stats, "proteus_curr_items"), 100);
    assert!(stat_u64(&stats, "proteus_bytes") > 0);

    // Connection gauges: this client's pooled connection is live.
    assert!(stat_u64(&stats, "proteus_curr_connections") >= 1);
    assert!(stat_u64(&stats, "proteus_total_connections") >= 1);

    // Per-command latency histograms: every command this client sent
    // was timed, and the percentile fields are present and sane.
    let gets = "proteus_command_latency_seconds_op_get";
    let sets = "proteus_command_latency_seconds_op_set";
    assert_eq!(
        stat_u64(&stats, &format!("{gets}_count")),
        client_hits + client_misses
    );
    assert_eq!(stat_u64(&stats, &format!("{sets}_count")), 100);
    for field in ["p50_us", "p99_us", "p999_us", "mean_us", "max_us"] {
        let v = stat_u64(&stats, &format!("{gets}_{field}"));
        assert!(v < 10_000_000, "absurd {field} for gets: {v}");
    }
    let p50 = stat_u64(&stats, &format!("{gets}_p50_us"));
    let p99 = stat_u64(&stats, &format!("{gets}_p99_us"));
    assert!(p50 <= p99, "p50 {p50} must not exceed p99 {p99}");

    // The plain memcached `stats` got the satellite fields too.
    let basic = stat_map(client.stats().unwrap());
    assert_eq!(stat_u64(&basic, "curr_items"), 100);
    assert_eq!(stat_u64(&basic, "get_hits"), client_hits);
    assert_eq!(
        stat_u64(&basic, "total_connections"),
        stat_u64(&stats, "proteus_total_connections")
    );
    assert!(basic.contains_key("uptime"));
    assert!(basic.contains_key("bytes"));
    assert!(basic.contains_key("get_p99_us"));

    server.stop();
}

/// A scale-down transition leaves an ordered lifecycle trace:
/// begin → digest broadcast per old-active server → per-key
/// migrations → drain → power-off of the departing server. The
/// client-side fetch-class counters reconcile with the trace.
#[test]
fn transition_emits_ordered_lifecycle_trace() {
    let servers: Vec<CacheServer> = (0..4)
        .map(|_| CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(8 << 20)).unwrap())
        .collect();
    let addrs: Vec<_> = servers.iter().map(CacheServer::addr).collect();
    let mut cluster =
        ClusterClient::connect(&addrs, Box::new(ProteusPlacement::generate(4))).unwrap();
    let db = Mutex::new(ShardedStore::new(StoreConfig {
        object_size: 64,
        ..StoreConfig::default()
    }));

    let keys: Vec<Vec<u8>> = (0..100u32)
        .map(|i| format!("page:{i}").into_bytes())
        .collect();
    for k in &keys {
        let (_, how) = cluster.fetch(k, &db).unwrap();
        assert_eq!(how, ClusterFetch::Database, "cold key must come from db");
    }
    assert!(
        cluster.tracer().is_empty(),
        "no events before the transition"
    );

    cluster.begin_transition(3).unwrap();
    let mut migrated = 0u64;
    for k in &keys {
        let (_, how) = cluster.fetch(k, &db).unwrap();
        if how == ClusterFetch::Migrated {
            migrated += 1;
        }
    }
    cluster.end_transition();

    let events = cluster.tracer().events();
    let kinds: Vec<&'static str> = events.iter().map(|e| e.kind.name()).collect();

    // Phase order: begin, then 4 digest broadcasts, then migrations,
    // then drain, then the departing server powers off.
    assert!(
        matches!(
            events[0].kind,
            TraceKind::TransitionBegin { from: 4, to: 3 }
        ),
        "first event must open the transition: {kinds:?}"
    );
    for i in 0..4 {
        match events[1 + i].kind {
            TraceKind::DigestBroadcast { server, ok } => {
                assert_eq!(server as usize, i, "broadcast order follows server order");
                assert!(ok, "all servers are healthy");
            }
            other => panic!(
                "event {} should be a digest broadcast, got {other:?}",
                1 + i
            ),
        }
    }
    let migrations: Vec<usize> = events
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e.kind, TraceKind::KeyMigrated { .. }))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(migrations.len() as u64, migrated, "one event per migration");
    assert!(migrated > 0, "a 4→3 scale-down must migrate some keys");
    let drain = events
        .iter()
        .position(|e| matches!(e.kind, TraceKind::TransitionDrain { from: 4, to: 3 }))
        .expect("drain event present");
    assert!(
        migrations.iter().all(|&m| m > 4 && m < drain),
        "migrations happen inside the window: {kinds:?}"
    );
    assert!(
        matches!(events[drain + 1].kind, TraceKind::PowerOff { server: 3 }),
        "departing server powers off after the drain: {kinds:?}"
    );
    assert_eq!(events.len(), drain + 2, "no stray events: {kinds:?}");

    // Timestamps are monotone along the trace.
    assert!(events
        .windows(2)
        .all(|w| w[0].at <= w[1].at && w[0].seq < w[1].seq));

    // Client-side fetch-class counters tell the same story.
    let fetches = cluster.fetch_stats();
    assert_eq!(fetches.count(FetchClassKind::Database), keys.len() as u64);
    assert_eq!(fetches.count(FetchClassKind::Migrated), migrated);
    assert_eq!(
        fetches.count(FetchClassKind::NewHit),
        keys.len() as u64 - migrated
    );
    assert_eq!(fetches.count(FetchClassKind::Degraded), 0);
    let (_, hit_count, hit_snap) = fetches
        .snapshot_all()
        .into_iter()
        .find(|(kind, _, _)| *kind == FetchClassKind::NewHit)
        .expect("new-hit class present");
    assert_eq!(hit_count, keys.len() as u64 - migrated);
    assert_eq!(hit_snap.count(), hit_count, "every single fetch was timed");

    for s in servers {
        s.stop();
    }
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut conn = std::net::TcpStream::connect(addr).unwrap();
    write!(
        conn,
        "GET {path} HTTP/1.1\r\nHost: proteus\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").expect("header terminator");
    (head.to_string(), body.to_string())
}

/// The HTTP scrape endpoint serves the same registry as `stats
/// proteus`, in Prometheus text exposition and in JSON.
#[test]
fn metrics_endpoint_serves_prometheus_and_json() {
    let server = CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(8 << 20)).unwrap();
    let mut metrics = MetricsServer::spawn("127.0.0.1:0", server.metric_source()).unwrap();
    let client = CacheClient::connect(server.addr()).unwrap();
    for i in 0..50u32 {
        client.set(format!("key:{i}").as_bytes(), b"value").unwrap();
        client.get(format!("key:{i}").as_bytes()).unwrap();
    }

    let (head, body) = http_get(metrics.local_addr(), "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("text/plain"), "{head}");
    assert!(body.contains("# TYPE proteus_command_latency_seconds summary"));
    assert!(body.contains("proteus_command_latency_seconds{op=\"get\",quantile=\"0.99\"}"));
    assert!(body.contains("proteus_get_hits_total 50"));
    assert!(body.contains("proteus_sets_total 50"));
    assert!(body.contains("proteus_curr_items 50"));

    let (head, json) = http_get(metrics.local_addr(), "/metrics.json");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("application/json"), "{head}");
    assert!(json.contains("\"proteus_get_hits_total\""));
    assert!(json.contains("\"quantiles_ns\""));

    let (head, _) = http_get(metrics.local_addr(), "/nope");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");

    metrics.stop();
    server.stop();
}
