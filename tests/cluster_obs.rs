//! End-to-end acceptance of the cluster observability plane: four live
//! TCP cache servers, each with its own metrics endpoint, an observer
//! aggregating them, and a provisioning transition in the middle of
//! the run. Three claims are proven:
//!
//! 1. `/trace.jsonl` replays the full transition lifecycle in order,
//!    parseable line by line, with zero sequence gaps beyond the
//!    counted drops.
//! 2. The cluster-wide p99 computed from scraped, remotely-merged
//!    histograms matches the servers' own merged snapshots.
//! 3. The wall-clock energy meter prices the post-transition (n−1)
//!    window strictly below an all-on baseline of the same duration.

use std::time::{Duration, Instant};

use parking_lot::Mutex;
use proteus::agg::{http_get, json, ClusterObserver, ObserverConfig, WallEnergyMeter};
use proteus::cache::CacheConfig;
use proteus::core::{PowerState, Scenario};
use proteus::net::{CacheServer, ClusterClient};
use proteus::obs::{HistogramSnapshot, MetricValue, MetricsServer, ScrapeLimits, TraceKind};
use proteus::store::{ShardedStore, StoreConfig};

const N: usize = 4;

#[test]
fn cluster_observability_end_to_end() {
    // --- A live cluster: 4 cache servers, each with a metrics
    // endpoint, plus the cluster client's own traced endpoint.
    let servers: Vec<CacheServer> = (0..N)
        .map(|_| CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(8 << 20)).unwrap())
        .collect();
    let addrs: Vec<std::net::SocketAddr> = servers.iter().map(CacheServer::addr).collect();
    let metric_endpoints: Vec<MetricsServer> = servers
        .iter()
        .map(|s| MetricsServer::spawn("127.0.0.1:0", s.metric_source()).unwrap())
        .collect();

    let mut cluster = ClusterClient::connect(&addrs, Scenario::Proteus.strategy(N, 0)).unwrap();
    let client_obs = MetricsServer::spawn_traced(
        "127.0.0.1:0",
        cluster.metric_source(),
        std::sync::Arc::clone(cluster.tracer()),
        ScrapeLimits::default(),
    )
    .unwrap();

    let config = ObserverConfig {
        connect_timeout: Duration::from_millis(500),
        read_timeout: Duration::from_secs(2),
        ..ObserverConfig::default()
    };
    let observer = ClusterObserver::new(config);
    for endpoint in &metric_endpoints {
        observer.add_server(endpoint.local_addr());
    }

    // --- Load, with a provisioning transition mid-run.
    let db = Mutex::new(ShardedStore::new(StoreConfig {
        object_size: 128,
        ..StoreConfig::default()
    }));
    let keys: Vec<Vec<u8>> = (0..200u32)
        .map(|i| format!("page:{i}").into_bytes())
        .collect();
    for k in &keys {
        cluster.fetch(k, &db).unwrap();
    }
    observer.tick(); // baseline counters for rate derivation

    cluster.begin_transition(N - 1).unwrap();
    for k in &keys {
        cluster.fetch(k, &db).unwrap();
    }
    cluster.end_transition();
    let final_snap = observer.tick();

    // --- Claim 1: the trace endpoint replays the whole lifecycle.
    let body = http_get(
        client_obs.local_addr(),
        "/trace.jsonl",
        Duration::from_millis(500),
        Duration::from_secs(2),
    )
    .unwrap();
    let tracer = cluster.tracer();
    let lines: Vec<&str> = body.lines().filter(|l| !l.is_empty()).collect();
    assert!(!lines.is_empty(), "transition must have produced events");
    let mut kinds = Vec::with_capacity(lines.len());
    let mut prev_seq: Option<u64> = None;
    for line in &lines {
        let event = json::parse(line).expect("every trace line parses alone");
        let seq = event.get("seq").unwrap().as_u64().unwrap();
        if let Some(prev) = prev_seq {
            assert_eq!(seq, prev + 1, "zero sequence gaps inside the replay");
        }
        prev_seq = Some(seq);
        assert!(event.get("at_ns").unwrap().as_u128().is_some());
        kinds.push(event.get("kind").unwrap().as_str().unwrap().to_string());
    }
    let first_seq = json::parse(lines[0])
        .unwrap()
        .get("seq")
        .unwrap()
        .as_u64()
        .unwrap();
    assert_eq!(
        first_seq,
        tracer.dropped(),
        "the only admissible gap is the counted drops before the ring"
    );
    assert_eq!(lines.len() as u64, tracer.recorded() - tracer.dropped());

    // Lifecycle order: begin, then digest broadcasts, then migrations,
    // then the drain that closes the window.
    let begin = kinds.iter().position(|k| k == "transition_begin").unwrap();
    let broadcast = kinds.iter().position(|k| k == "digest_broadcast").unwrap();
    let migrated = kinds.iter().position(|k| k == "key_migrated").unwrap();
    let drain = kinds.iter().rposition(|k| k == "transition_drain").unwrap();
    assert!(begin < broadcast && broadcast < migrated && migrated < drain);
    let begin_event = json::parse(lines[begin]).unwrap();
    assert_eq!(begin_event.get("from").unwrap().as_u64(), Some(N as u64));
    assert_eq!(begin_event.get("to").unwrap().as_u64(), Some(N as u64 - 1));
    assert!(
        tracer
            .events()
            .iter()
            .any(|e| matches!(e.kind, TraceKind::KeyMigrated { .. })),
        "transition to n-1 must migrate keys"
    );

    // --- Claim 2: scraped-and-merged p99 equals the servers' own
    // merged snapshots. No commands run between the final tick and
    // this oracle, and the JSON wire is lossless, so the match is
    // exact — stronger than the histogram's error bound.
    let mut oracle = HistogramSnapshot::empty();
    for server in &servers {
        for m in server.metric_source()() {
            if m.name == "proteus_command_latency_seconds" {
                if let MetricValue::Histogram(h) = m.value {
                    oracle.merge(&h);
                }
            }
        }
    }
    let mut scraped = HistogramSnapshot::empty();
    for m in &final_snap.merged {
        if m.name == "proteus_command_latency_seconds" {
            if let MetricValue::Histogram(h) = &m.value {
                scraped.merge(h);
            }
        }
    }
    assert!(scraped.count() > 0, "load must have produced latencies");
    assert_eq!(scraped, oracle, "remote merge == in-process merge");
    assert_eq!(
        scraped.quantile(0.99),
        oracle.quantile(0.99),
        "cluster p99 from scrapes matches the servers' own"
    );
    assert!(
        final_snap.servers.iter().all(|s| s.fresh),
        "all four endpoints scraped successfully"
    );

    // --- Claim 3: metering the observed post-transition cluster (one
    // server powered off) over a fixed window costs strictly less than
    // the all-on baseline over the same window. Utilizations come from
    // the live observation; the timeline is synthetic so both windows
    // have exactly equal duration.
    let observed_util: Vec<f64> = final_snap.servers.iter().map(|s| s.utilization).collect();
    let window = Duration::from_secs(300);
    let t0 = Instant::now();
    let mut baseline = WallEnergyMeter::new(config.power, N, config.server_capacity_ops);
    baseline.sample_at(t0, &observed_util);
    baseline.sample_at(t0 + window, &observed_util);
    let mut scaled = WallEnergyMeter::new(config.power, N, config.server_capacity_ops);
    scaled.set_state(N - 1, PowerState::Off);
    let mut scaled_util = observed_util;
    scaled_util[N - 1] = 0.0;
    scaled.sample_at(t0, &scaled_util);
    scaled.sample_at(t0 + window, &scaled_util);
    assert!(
        scaled.joules() < baseline.joules(),
        "n-1 window must be strictly cheaper: {} vs {} J",
        scaled.joules(),
        baseline.joules()
    );
    assert!(scaled.server_seconds() < baseline.server_seconds());

    // The observer's own account tracks the power-down too.
    observer.set_power_state(metric_endpoints[N - 1].local_addr(), PowerState::Off);
    let after_off = observer.tick();
    assert_eq!(after_off.active_servers, N - 1);
    assert!(observer.energy().server_seconds() > 0.0);

    drop(client_obs);
    drop(metric_endpoints);
    for s in servers {
        s.stop();
    }
}
