//! Integration tests pinning the paper's analytical claims, checked
//! through the public facade API.

use proteus::bloom::{config, BloomConfig};
use proteus::ring::{analysis, ProteusPlacement, Ratio, ReplicatedPlacement, ServerId};

/// Theorem 1: Algorithm 1 uses exactly `N(N-1)/2 + 1` virtual nodes —
/// the proven lower bound for the Balance Condition.
#[test]
fn theorem_1_virtual_node_lower_bound() {
    for n in 1..=32 {
        let p = ProteusPlacement::generate(n);
        assert_eq!(p.virtual_node_count(), n * (n - 1) / 2 + 1, "N={n}");
    }
}

/// Section III-D: every active prefix owns exactly 1/n of the key
/// space, verified in exact rational arithmetic.
#[test]
fn balance_condition_exact_for_the_papers_cluster() {
    let p = ProteusPlacement::generate(10); // the paper's 10 memcached servers
    for n in 1..=10 {
        for share in p.ownership_shares(n) {
            assert_eq!(share, Ratio::new(1, n as i128));
        }
    }
}

/// Section II's migration objective: at most |Δn| / max(n, n') of the
/// data is remapped, achieved with equality.
#[test]
fn minimal_migration_objective() {
    let p = ProteusPlacement::generate(10);
    for (from, to) in [(10usize, 9usize), (9, 10), (10, 6), (5, 10)] {
        let measured = analysis::remap_fraction(&p, from, to, 60_000, 3);
        let bound = analysis::minimal_remap_fraction(from, to);
        assert!(
            (measured - bound).abs() < 0.01,
            "{from}->{to}: measured {measured}, bound {bound}"
        );
    }
}

/// Fig. 2's final-successor structure: `Ps_i = {s_1..s_{i-1}}`.
#[test]
fn fig2_final_successor_sets() {
    let p = ProteusPlacement::generate(6);
    for i in 1..=6u32 {
        let ps = analysis::final_successors(&p, ServerId::new(i - 1));
        let expect: std::collections::BTreeSet<ServerId> =
            (0..i.saturating_sub(1)).map(ServerId::new).collect();
        assert_eq!(ps, expect, "Ps_{i}");
    }
}

/// Eq. 3: replication no-conflict probability, predicted vs measured.
#[test]
fn eq3_replication_no_conflict() {
    // Closed form sanity: r=3, n=10 → 0.72.
    let p = ReplicatedPlacement::no_conflict_probability(3, 10);
    assert!((p - 0.72).abs() < 1e-12);
    // "As r is usually small and n(t) much larger, Pnc should be close
    // to 1."
    assert!(ReplicatedPlacement::no_conflict_probability(3, 1000) > 0.99);
    // Measured agreement.
    let rp = ReplicatedPlacement::new(10, 3, 7);
    let trials = 30_000u64;
    let distinct = (0..trials)
        .filter(|k| rp.distinct_servers_for(&k.to_le_bytes(), 10).len() == 3)
        .count();
    let measured = distinct as f64 / trials as f64;
    assert!((measured - 0.72).abs() < 0.02, "measured {measured}");
}

/// §IV-B's worked example: (κ=10⁴, h=4, p=10⁻⁴) → b = 3, ≈150 KB.
#[test]
fn eq10_bloom_configuration_example() {
    let cfg = BloomConfig::optimal(10_000, 4, 1e-4, 1e-4);
    assert_eq!(cfg.counter_bits, 3);
    let kb = cfg.memory_bytes() as f64 / 1024.0;
    assert!((100.0..=160.0).contains(&kb), "{kb} KB");
    // Both bounds hold at the chosen configuration.
    assert!(config::false_positive_rate(cfg.counters, 4, 10_000) <= 1e-4 * 1.001);
    assert!(config::false_negative_bound(cfg.counters, cfg.counter_bits, 4, 10_000) <= 1e-4);
}

/// The Table II / Fig. 5 ordering: Proteus and modulo balance nearly
/// perfectly; random consistent hashing does not.
#[test]
fn fig5_balance_ordering() {
    use proteus::core::Scenario;
    let samples = 250_000;
    let n = 10;
    let ratio = |sc: Scenario| {
        let strategy = sc.strategy(n, 0);
        analysis::balance_ratio(&*strategy, n, samples, 11)
    };
    let r_static = ratio(Scenario::Static);
    let r_proteus = ratio(Scenario::Proteus);
    let r_consistent = ratio(Scenario::Consistent(proteus::core::VnodeBudget::Quadratic));
    assert!(r_static > 0.97, "static {r_static}");
    assert!(r_proteus > 0.97, "proteus {r_proteus}");
    assert!(r_consistent < 0.8, "consistent {r_consistent}");
    assert!(r_proteus > r_consistent + 0.15);
}

/// Strategy lookups agree across independently constructed instances —
/// the distributed-consistency objective of Section II.
#[test]
fn web_tier_consistency_without_coordination() {
    use proteus::core::Scenario;
    for sc in Scenario::all() {
        let a = sc.strategy(10, 0);
        let b = sc.strategy(10, 0);
        for k in 0..2_000u64 {
            let key = proteus::ring::hash::splitmix64(k);
            for n in [1usize, 4, 7, 10] {
                assert_eq!(a.server_for(key, n), b.server_for(key, n), "{sc} n={n}");
            }
        }
    }
}
