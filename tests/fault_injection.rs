//! Fault-injection integration tests: the cluster must survive a cache
//! server dying mid-traffic — including mid-*transition* — with every
//! request still answered, bounded retries, and the circuit breaker
//! keeping connect pressure on the dead server to O(probes).
//!
//! Every cache server sits behind a [`FaultProxy`], so tests can
//! blackhole or reset one "server" at any moment without touching the
//! real process.

use parking_lot::Mutex;
use proteus::cache::CacheConfig;
use proteus::net::{
    CacheServer, ClientConfig, ClusterClient, ClusterFetch, FaultMode, FaultProxy, HotKeyConfig,
};
use proteus::ring::ProteusPlacement;
use proteus::store::{ShardedStore, StoreConfig};

struct Rig {
    servers: Vec<CacheServer>,
    proxies: Vec<FaultProxy>,
    cluster: ClusterClient,
    db: Mutex<ShardedStore>,
}

fn rig(n: usize) -> Rig {
    let servers: Vec<CacheServer> = (0..n)
        .map(|_| CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(8 << 20)).unwrap())
        .collect();
    let proxies: Vec<FaultProxy> = servers
        .iter()
        .map(|s| FaultProxy::spawn(s.addr()).unwrap())
        .collect();
    let addrs: Vec<_> = proxies.iter().map(FaultProxy::addr).collect();
    let cluster = ClusterClient::connect_with(
        &addrs,
        Box::new(ProteusPlacement::generate(n)),
        ClientConfig::fast_failover(),
    )
    .unwrap();
    let db = Mutex::new(ShardedStore::new(StoreConfig {
        object_size: 128,
        ..StoreConfig::default()
    }));
    Rig {
        servers,
        proxies,
        cluster,
        db,
    }
}

impl Rig {
    fn teardown(self) {
        drop(self.cluster);
        for p in self.proxies {
            p.stop();
        }
        for s in self.servers {
            s.stop();
        }
    }
}

fn replicated_rig(n: usize, hot: HotKeyConfig) -> Rig {
    let servers: Vec<CacheServer> = (0..n)
        .map(|_| CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(8 << 20)).unwrap())
        .collect();
    let proxies: Vec<FaultProxy> = servers
        .iter()
        .map(|s| FaultProxy::spawn(s.addr()).unwrap())
        .collect();
    let addrs: Vec<_> = proxies.iter().map(FaultProxy::addr).collect();
    let cluster = ClusterClient::connect_replicated(
        &addrs,
        Box::new(ProteusPlacement::generate(n)),
        ClientConfig::fast_failover(),
        hot,
    )
    .unwrap();
    let db = Mutex::new(ShardedStore::new(StoreConfig {
        object_size: 128,
        ..StoreConfig::default()
    }));
    Rig {
        servers,
        proxies,
        cluster,
        db,
    }
}

fn hot_keys(n: u32) -> Vec<Vec<u8>> {
    (0..n).map(|i| format!("page:{i}").into_bytes()).collect()
}

/// A writable backing store for staleness tests: the test can advance
/// a key to a new version, so any later read of the old bytes is a
/// provable stale copy rather than an honest authoritative answer.
#[derive(Default)]
struct VersionedDb {
    values: Mutex<std::collections::HashMap<Vec<u8>, Vec<u8>>>,
    fetches: std::sync::atomic::AtomicU64,
}

impl VersionedDb {
    fn set(&self, key: &[u8], value: &[u8]) {
        self.values.lock().insert(key.to_vec(), value.to_vec());
    }

    fn fetches(&self) -> u64 {
        self.fetches.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl proteus::net::DbFallback for VersionedDb {
    fn fetch(&self, key: &[u8]) -> Result<Vec<u8>, proteus::net::NetError> {
        self.fetches
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(self.values.lock().get(key).cloned().unwrap_or_default())
    }
}

/// A replicated hot key survives its *home* server going dark
/// mid-transition: every read is served by a surviving replica with
/// zero errors and zero database fallbacks, and once the home returns
/// a write invalidates every replica so no stale value ever resurfaces.
#[test]
fn replicated_key_survives_home_blackhole_mid_transition() {
    let mut r = replicated_rig(
        4,
        HotKeyConfig {
            replicas: 4,
            hot_key_threshold: 5,
            sketch_capacity: 32,
        },
    );
    let key: &[u8] = b"celebrity";
    let db = VersionedDb::default();
    db.set(key, b"v1");
    for _ in 0..20 {
        r.cluster.fetch(key, &db).unwrap();
    }
    let full_set = r.cluster.replicas_of(key).unwrap();
    assert!(
        full_set.len() >= 3,
        "the hot key must be replicated widely, got {full_set:?}"
    );

    // Scale down 4 -> 3; the replica set is recomputed against the new
    // ring, so every member lies in the surviving prefix.
    r.cluster.begin_transition(3).unwrap();
    let replicas = r.cluster.replicas_of(key).unwrap();
    assert!(replicas.iter().all(|&s| s < 3), "stale replica set");
    assert!(replicas.len() >= 2, "need survivors, got {replicas:?}");
    let home = r.cluster.server_for(key).index();
    assert_eq!(home, replicas[0], "replica 0 is the home server");

    // The home goes dark mid-transition. Every read must come from a
    // surviving replica: no errors, no database fallback.
    r.proxies[home].set_mode(FaultMode::Blackhole);
    let db_before = db.fetches();
    for _ in 0..30 {
        let (value, how) = r
            .cluster
            .fetch(key, &db)
            .unwrap_or_else(|e| panic!("read of a replicated key errored with its home dark: {e}"));
        assert_eq!(&value[..], b"v1");
        assert_eq!(
            how,
            ClusterFetch::ReplicaHit,
            "reads must be served by surviving replicas"
        );
    }
    assert_eq!(
        db.fetches(),
        db_before,
        "replica reads must never touch the database"
    );

    // The home comes back. Wait for the breaker's probe to close the
    // circuit (the home write is best-effort, so an open breaker would
    // silently skip it), then write v2 through: database first, then
    // the cache, which installs at the home and invalidates every
    // other replica.
    r.proxies[home].set_mode(FaultMode::Forward);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(15);
    while r.cluster.client(home).get(key).is_err() {
        assert!(
            std::time::Instant::now() < deadline,
            "the home never became reachable again"
        );
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    db.set(key, b"v2");
    r.cluster.put(key, b"v2").unwrap();
    r.cluster.end_transition();
    for &s in replicas.iter().filter(|&&s| s != home) {
        assert_eq!(
            r.cluster.client(s).get(key).unwrap(),
            None,
            "replica {s} must be invalidated by the write"
        );
    }
    // No stale value after invalidation: every subsequent read observes
    // v2, whichever replica serves it.
    for _ in 0..30 {
        let (value, how) = r.cluster.fetch(key, &db).unwrap();
        assert_eq!(
            String::from_utf8_lossy(&value[..]),
            "v2",
            "a stale replica value resurfaced after invalidation ({how:?})"
        );
    }
    r.teardown();
}

/// The headline scenario from the issue: a 4-server warmed cluster
/// begins a 4→3 transition, the departing server goes dark mid-window,
/// and a full sweep of the hot set still answers every request — some
/// migrated, some degraded to the database, none errored.
#[test]
fn server_death_mid_transition_degrades_but_never_errors() {
    let mut r = rig(4);
    let keys = hot_keys(200);
    for k in &keys {
        r.cluster.fetch(k, &r.db).unwrap();
    }
    r.cluster.begin_transition(3).unwrap();

    // Mid-transition, the departing server (old-mapping index 3) dies:
    // it accepts connections but never answers another byte.
    r.proxies[3].set_mode(FaultMode::Blackhole);
    let accepted_before = r.proxies[3].connections_accepted();

    let mut counts = std::collections::HashMap::new();
    for k in &keys {
        let (value, how) = r.cluster.fetch(k, &r.db).unwrap_or_else(|e| {
            panic!("request for {:?} errored: {e}", String::from_utf8_lossy(k))
        });
        assert!(!value.is_empty());
        *counts.entry(how).or_insert(0u32) += 1;
    }
    // Every key resolved into one of the four classes; keys that
    // needed the dead server for migration show up as Degraded.
    let degraded = counts.get(&ClusterFetch::Degraded).copied().unwrap_or(0);
    assert!(degraded > 0, "some hot keys lived only on the dead server");
    let answered: u32 = counts.values().sum();
    assert_eq!(answered, keys.len() as u32);

    // The circuit breaker caps connect pressure on the dead server:
    // a handful of dials (initial failures + cooldown probes), not one
    // per degraded request.
    let dials = r.proxies[3].connections_accepted() - accepted_before;
    assert!(
        dials <= 10,
        "breaker should bound dials to the dead server, saw {dials}"
    );
    let stats = r.cluster.fault_stats();
    assert!(
        stats.fast_fails > 0,
        "later requests must fast-fail through the open breaker"
    );
    assert_eq!(stats.degraded_fetches, u64::from(degraded));

    // A second sweep is served without the dead server at all: every
    // key is now installed at its new-mapping server.
    for k in &keys {
        let (_, how) = r.cluster.fetch(k, &r.db).unwrap();
        assert!(
            matches!(how, ClusterFetch::Hit | ClusterFetch::Database),
            "second sweep should not need migration, got {how:?}"
        );
    }
    r.cluster.end_transition();
    r.teardown();
}

/// A *surviving* server dying outside any transition: its share of the
/// key space degrades to the database, every other server keeps
/// serving hits, and recovery is automatic once the server returns.
#[test]
fn dead_then_revived_server_heals_without_intervention() {
    let r = rig(3);
    let keys = hot_keys(120);
    for k in &keys {
        r.cluster.fetch(k, &r.db).unwrap();
    }

    r.proxies[0].set_mode(FaultMode::Reset);
    let mut degraded = 0u32;
    for k in &keys {
        let (_, how) = r.cluster.fetch(k, &r.db).unwrap();
        match how {
            ClusterFetch::Degraded => degraded += 1,
            ClusterFetch::Hit => {}
            other => panic!("unexpected class {other:?}"),
        }
        if r.cluster.server_for(k).index() == 0 {
            assert_eq!(how, ClusterFetch::Degraded);
        }
    }
    assert!(degraded > 0);

    // Server comes back; the breaker's next probe closes the circuit
    // and the keys repopulate on demand.
    r.proxies[0].set_mode(FaultMode::Forward);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(15);
    loop {
        let all_hits = keys.iter().all(|k| {
            matches!(
                r.cluster.fetch(k, &r.db),
                Ok((_, ClusterFetch::Hit | ClusterFetch::Database))
            )
        });
        if all_hits {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "cluster never healed after the server returned"
        );
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    r.teardown();
}

/// Batched fetches isolate a dead server to its own key group: the
/// pipelined sweep answers every key, and only the dead group pays the
/// degraded path.
#[test]
fn batched_sweep_survives_a_blackholed_server() {
    let r = rig(3);
    let keys = hot_keys(90);
    for k in &keys {
        r.cluster.fetch(k, &r.db).unwrap();
    }
    r.proxies[1].set_mode(FaultMode::Blackhole);

    let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
    let results = r.cluster.fetch_many(&refs, &r.db).unwrap();
    assert_eq!(results.len(), keys.len());
    for (k, (value, how)) in keys.iter().zip(&results) {
        assert!(!value.is_empty());
        if r.cluster.server_for(k).index() == 1 {
            assert_eq!(*how, ClusterFetch::Degraded);
        } else {
            assert_eq!(*how, ClusterFetch::Hit, "live groups must be untouched");
        }
    }
    r.teardown();
}

/// The digest broadcast at `begin_transition` must overlap the
/// per-server round trips: with every server behind a 150ms-per-request
/// proxy, a snapshot costs ~300ms per server (two delayed requests), so
/// a serial 4-server broadcast needs >= ~1.2s while the parallel one
/// finishes in roughly one server's time.
#[test]
fn digest_broadcast_overlaps_slow_servers() {
    use std::time::{Duration, Instant};
    let delay = Duration::from_millis(150);
    let servers: Vec<CacheServer> = (0..4)
        .map(|_| CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(8 << 20)).unwrap())
        .collect();
    let proxies: Vec<FaultProxy> = servers
        .iter()
        .map(|s| FaultProxy::spawn(s.addr()).unwrap())
        .collect();
    let addrs: Vec<_> = proxies.iter().map(FaultProxy::addr).collect();
    // Generous timeouts: the injected latency must read as slowness,
    // not as a transport failure.
    let config = ClientConfig {
        op_timeout: Duration::from_secs(5),
        connect_timeout: Duration::from_secs(1),
        max_retries: 0,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        breaker_threshold: 10,
        breaker_cooldown: Duration::from_secs(1),
    };
    let mut cluster =
        ClusterClient::connect_with(&addrs, Box::new(ProteusPlacement::generate(4)), config)
            .unwrap();
    for proxy in &proxies {
        proxy.set_mode(FaultMode::Latency(delay));
    }

    let begin = Instant::now();
    cluster.begin_transition(3).unwrap();
    let elapsed = begin.elapsed();

    assert_eq!(
        cluster.fault_stats().missing_digests,
        0,
        "every slow-but-alive server must deliver its digest"
    );
    // Parallel floor is ~2x delay (one server's two requests); the
    // serial broadcast would need at least 8x delay. Split the
    // difference with headroom for a loaded CI machine.
    assert!(
        elapsed < delay * 5,
        "broadcast must overlap per-server round trips, took {elapsed:?}"
    );
    cluster.end_transition();
    drop(cluster);
    for p in proxies {
        p.stop();
    }
    for s in servers {
        s.stop();
    }
}

/// Flaky-but-alive failure modes: added latency slows requests without
/// errors, and a mid-response cut is retried (or degraded) — never
/// surfaced to the caller.
#[test]
fn latency_and_cut_responses_stay_invisible_to_callers() {
    let r = rig(2);
    let keys = hot_keys(40);
    for k in &keys {
        r.cluster.fetch(k, &r.db).unwrap();
    }

    r.proxies[0].set_mode(FaultMode::Latency(std::time::Duration::from_millis(5)));
    for k in &keys {
        let (_, how) = r.cluster.fetch(k, &r.db).unwrap();
        assert!(matches!(how, ClusterFetch::Hit | ClusterFetch::Database));
    }

    r.proxies[0].set_mode(FaultMode::CutResponses(2));
    for k in &keys {
        // Truncated responses surface inside the client as transport
        // failures; the cluster client must still answer the request.
        let (value, _) = r.cluster.fetch(k, &r.db).unwrap();
        assert!(!value.is_empty());
    }
    assert!(r.proxies[0].responses_cut() > 0 || r.cluster.fault_stats().fast_fails > 0);
    r.teardown();
}
