//! End-to-end acceptance of the closed power-control loop: four live
//! TCP cache servers, a controller steering them, and one compressed
//! diurnal day replayed through the cluster client. The paper's whole
//! story (Figs. 10–11) in one test:
//!
//! 1. Every replayed request completes — transitions open and close
//!    mid-stream without a single client error.
//! 2. n(t) follows the curve both ways: the night sheds servers, the
//!    morning ramp grows them back.
//! 3. The energy account lands within 1.5× the proportional oracle,
//!    and strictly below an all-on cluster's machine-time.
//! 4. The worst windowed cluster p99 stays under the 0.5 s bound.
//! 5. `/trace.jsonl` replays every controller decision and the
//!    transition it actuated with contiguous seqs.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use proteus::agg::{http_get, json, ClusterObserver, ObserverConfig};
use proteus::cache::CacheConfig;
use proteus::core::Scenario;
use proteus::ctl::{ActuationConfig, ClusterController, PolicyConfig, StepAction, WallPolicy};
use proteus::net::{CacheServer, ClusterClient};
use proteus::obs::{MetricsServer, ScrapeLimits};
use proteus::sim::SimDuration;
use proteus::store::{ShardedStore, StoreConfig};
use proteus::workload::{CompressedDay, DiurnalCurve, ReplayPacer};

const N: usize = 4;
const CAPACITY_OPS: f64 = 100.0;

#[test]
fn controller_replays_a_compressed_day_within_the_energy_and_delay_gates() {
    // One simulated day in 8 s of wall time; load levels are replayed
    // verbatim (110..330 ops/s against 4 × 100 ops/s of capacity).
    let day = CompressedDay::new(
        DiurnalCurve::new(200.0, 3.0, SimDuration::from_secs(86_400)),
        10_800.0,
    );
    let wall_day = day.wall_day();

    let servers: Vec<CacheServer> = (0..N)
        .map(|_| CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(8 << 20)).unwrap())
        .collect();
    let addrs: Vec<std::net::SocketAddr> = servers.iter().map(CacheServer::addr).collect();
    let endpoints: Vec<MetricsServer> = servers
        .iter()
        .map(|s| MetricsServer::spawn("127.0.0.1:0", s.metric_source()).unwrap())
        .collect();
    let client = Arc::new(RwLock::new(
        ClusterClient::connect(&addrs, Scenario::Proteus.strategy(N, 0)).unwrap(),
    ));
    let tracer = Arc::clone(client.read().tracer());
    let source = client.read().metric_source();
    let exposition =
        MetricsServer::spawn_traced("127.0.0.1:0", source, tracer, ScrapeLimits::default())
            .unwrap();

    let observer = Arc::new(ClusterObserver::new(ObserverConfig {
        connect_timeout: Duration::from_millis(500),
        read_timeout: Duration::from_secs(2),
        server_capacity_ops: CAPACITY_OPS,
        ..ObserverConfig::default()
    }));
    for e in &endpoints {
        observer.add_server(e.local_addr());
    }
    let policy = WallPolicy::new(PolicyConfig {
        min_servers: 1,
        max_step: 2,
        cooldown: Duration::from_millis(500),
        ..PolicyConfig::for_cluster(N, CAPACITY_OPS)
    });
    let bound = Duration::from_nanos(policy.config().points.bound_ns());
    let mut controller = ClusterController::new(
        Arc::clone(&observer),
        Arc::clone(&client),
        endpoints.iter().map(MetricsServer::local_addr).collect(),
        policy,
        ActuationConfig {
            boot_delay: Duration::from_millis(100),
            drain: Duration::from_millis(100),
        },
    );

    let db = Mutex::new(ShardedStore::new(StoreConfig {
        object_size: 128,
        ..StoreConfig::default()
    }));
    let keys: Vec<Vec<u8>> = (0..400u32)
        .map(|i| format!("page:{i}").into_bytes())
        .collect();
    for k in &keys {
        client.read().fetch(k, &db).unwrap();
    }

    // --- Replay the day with the controller online.
    let tick = Duration::from_millis(150);
    let mut pacer = ReplayPacer::new(day);
    let mut errors = 0u64;
    let mut cursor = 0usize;
    let mut shrinks = 0u32;
    let mut grows = 0u32;
    let mut worst_p99 = Duration::ZERO;
    let start = Instant::now();
    let mut next_tick = Duration::ZERO;
    loop {
        let elapsed = start.elapsed();
        if elapsed >= wall_day {
            break;
        }
        for _ in 0..pacer.due(elapsed) {
            let key = &keys[cursor % keys.len()];
            cursor += 1;
            if client.read().fetch(key, &db).is_err() {
                errors += 1;
            }
        }
        if elapsed >= next_tick {
            next_tick += tick;
            let report = controller.step();
            match report.action {
                StepAction::WindowClosed { from, to } if to < from => shrinks += 1,
                StepAction::WindowClosed { .. } => grows += 1,
                _ => {}
            }
            if let Some(p99) = report.signal.p99 {
                worst_p99 = worst_p99.max(p99);
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    observer.tick();

    // --- Gate 1: zero client errors.
    assert_eq!(errors, 0, "replayed requests must never error");
    assert!(pacer.issued() > 500, "the day must have carried real load");

    // --- Gate 2: n(t) moved in both directions.
    assert!(shrinks > 0, "the night must shed servers");
    assert!(grows > 0, "the morning ramp must grow them back");
    assert!(controller.decisions() >= 2);

    // --- Gate 3: energy within 1.5x the proportional oracle, with
    // machine-time meaningfully below all-on.
    let meter = observer.energy();
    let proportionality = meter.proportionality().expect("energy accumulated");
    assert!(
        proportionality <= 1.5,
        "measured energy must stay within 1.5x the oracle: {proportionality:.3}"
    );
    let elapsed = meter.elapsed().expect("sampled").as_secs_f64();
    let all_on_fraction = meter.server_seconds() / (N as f64 * elapsed);
    assert!(
        all_on_fraction < 0.95,
        "the cluster never meaningfully powered down: {all_on_fraction:.3}"
    );

    // --- Gate 4: the delay bound held all day.
    assert!(
        worst_p99 < bound,
        "worst windowed p99 {worst_p99:?} must stay under {bound:?}"
    );

    // --- Gate 5: gap-free decision + transition trace over HTTP.
    let body = http_get(
        exposition.local_addr(),
        "/trace.jsonl",
        Duration::from_millis(500),
        Duration::from_secs(2),
    )
    .unwrap();
    let lines: Vec<&str> = body.lines().filter(|l| !l.is_empty()).collect();
    assert!(!lines.is_empty());
    let mut events = Vec::with_capacity(lines.len());
    let mut prev_seq: Option<u64> = None;
    for line in &lines {
        let event = json::parse(line).expect("every trace line parses alone");
        let seq = event.get("seq").unwrap().as_u64().unwrap();
        if let Some(prev) = prev_seq {
            assert_eq!(seq, prev + 1, "zero sequence gaps in the replay");
        }
        prev_seq = Some(seq);
        events.push(event);
    }
    let kind = |e: &json::Json| e.get("kind").unwrap().as_str().unwrap().to_string();
    let decisions: Vec<usize> = events
        .iter()
        .enumerate()
        .filter(|&(_, e)| kind(e) == "controller_decision")
        .map(|(i, _)| i)
        .collect();
    assert_eq!(
        decisions.len() as u64,
        controller.decisions(),
        "every actuated decision reached the trace"
    );
    for &i in &decisions {
        let begin = events[i + 1..]
            .iter()
            .find(|&e| kind(e) == "transition_begin")
            .expect("every decision is followed by its transition");
        assert_eq!(
            (events[i].get("from"), events[i].get("to")),
            (begin.get("from"), begin.get("to")),
            "decision must match the transition it actuated"
        );
    }

    drop(exposition);
    drop(endpoints);
    for s in servers {
        s.stop();
    }
}
