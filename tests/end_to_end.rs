//! End-to-end cluster simulations comparing the four Table II
//! scenarios — the integration-level versions of Figs. 5, 9, 10, 11.

use proteus::core::{ClusterConfig, ClusterReport, ClusterSim, ProvisioningPlan, Scenario};
use proteus::sim::SimDuration;
use proteus::workload::Trace;

/// One shared stress workload: forced down/up transitions at a load
/// where the database pool is the bottleneck during miss storms.
fn run(scenario: Scenario, seed: u64) -> ClusterReport {
    let config = ClusterConfig::small();
    let trace = Trace::synthesize(&config.trace_config(400.0), 21);
    let plan = ProvisioningPlan::from_counts(vec![4, 3, 2, 3, 4, 3], config.cache_servers);
    ClusterSim::new(config, scenario, &trace, &plan, seed).run()
}

#[test]
fn every_request_completes_in_every_scenario() {
    let config = ClusterConfig::small();
    let trace = Trace::synthesize(&config.trace_config(400.0), 21);
    for sc in Scenario::all() {
        let report = run(sc, 1);
        assert_eq!(
            report.completed_requests(),
            trace.len() as u64,
            "{sc} lost requests"
        );
    }
}

#[test]
fn fig9_spike_ordering_naive_worst_proteus_best_dynamic() {
    // Fig. 9's ordering among the *dynamic* scenarios, which share the
    // provisioning plan (and therefore the same cache-capacity
    // squeeze — this stress plan deliberately shrinks to half
    // capacity, something the paper's feedback loop would avoid):
    // naive ≫ consistent ≥ proteus.
    let naive = run(Scenario::Naive, 4);
    let consistent = run(
        Scenario::Consistent(proteus::core::VnodeBudget::Quadratic),
        4,
    );
    let proteus = run(Scenario::Proteus, 4);
    let n_worst = naive.worst_bucket_quantile(0.999).unwrap();
    let c_worst = consistent.worst_bucket_quantile(0.999).unwrap();
    let p_worst = proteus.worst_bucket_quantile(0.999).unwrap();
    assert!(
        n_worst.as_secs_f64() > 2.0 * p_worst.as_secs_f64(),
        "naive {n_worst} vs proteus {p_worst}"
    );
    assert!(
        p_worst <= c_worst,
        "proteus {p_worst} must not spike above consistent {c_worst}"
    );
}

#[test]
fn proteus_transition_db_traffic_is_bounded() {
    // Migration is amortized over requests (Section IV): some data
    // moves cache-to-cache, and total database traffic stays far below
    // naive's full-remap storms. (Versus consistent hashing the win is
    // spike *timing*, not volume — in a capacity-bound cache every
    // migrated item evicts another, so totals converge; Fig. 9 carries
    // that comparison.)
    let naive = run(Scenario::Naive, 3);
    let proteus = run(Scenario::Proteus, 3);
    assert!(proteus.counters.migrated > 0, "transitions must migrate");
    assert!(
        (proteus.counters.database_total() as f64) < 0.7 * naive.counters.database_total() as f64,
        "proteus {} vs naive {}",
        proteus.counters.database_total(),
        naive.counters.database_total()
    );
}

#[test]
fn fig11_energy_ordering() {
    let static_report = run(Scenario::Static, 4);
    let naive = run(Scenario::Naive, 4);
    let proteus = run(Scenario::Proteus, 4);
    // All dynamic scenarios save cache-tier energy over static.
    assert!(proteus.cache_energy_j < static_report.cache_energy_j);
    assert!(naive.cache_energy_j < static_report.cache_energy_j);
    // Proteus saves essentially as much as naive (its draining servers
    // stay on only TTL longer).
    let naive_saving = static_report.cache_energy_j - naive.cache_energy_j;
    let proteus_saving = static_report.cache_energy_j - proteus.cache_energy_j;
    // Proteus pays only the TTL-long drain windows over naive: one
    // drained server burns ~idle-power × TTL extra per down-transition.
    // The test config runs TTL at 60% of a slot (so short traces still
    // exercise migration), which prices the two down-transitions at
    // roughly 2 × 6 s × 80 W ≈ 1 kJ of the ~2.7 kJ naive saving. At the
    // paper's TTL:slot ratio (minutes against 30-minute slots) the gap
    // vanishes — the paper_scale experiments in `crates/bench` measure
    // savings within 1% of naive's.
    assert!(
        proteus_saving > 0.5 * naive_saving,
        "proteus saving {proteus_saving} vs naive {naive_saving}"
    );
}

#[test]
fn digest_false_positives_are_rare() {
    let proteus = run(Scenario::Proteus, 5);
    let fp = proteus.counters.database_false_positive as f64;
    let lookups = proteus.completed_requests() as f64;
    assert!(
        fp / lookups < 0.01,
        "false positive fraction {}",
        fp / lookups
    );
}

#[test]
fn balance_ratio_tracks_scenario_quality_under_dynamics() {
    let proteus = run(Scenario::Proteus, 6);
    let consistent = run(
        Scenario::Consistent(proteus::core::VnodeBudget::Quadratic),
        6,
    );
    let mean = |r: &ClusterReport| {
        let v: Vec<f64> = r.balance_ratio_per_slot().into_iter().flatten().collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    let p = mean(&proteus);
    let c = mean(&consistent);
    assert!(p > c, "proteus balance {p} vs consistent {c}");
}

#[test]
fn component_scenarios_split_the_mechanisms() {
    // Placement without digests keeps balance but regains spikes;
    // digests without placement keep smoothness but lose balance.
    let proteus = run(Scenario::Proteus, 4);
    let blind = run(Scenario::ProteusBlind, 4);
    let smart_consistent = run(
        Scenario::ConsistentSmart(proteus::core::VnodeBudget::Quadratic),
        4,
    );
    let consistent = run(
        Scenario::Consistent(proteus::core::VnodeBudget::Quadratic),
        4,
    );
    let mean_balance = |r: &ClusterReport| {
        let v: Vec<f64> = r.balance_ratio_per_slot().into_iter().flatten().collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    // Balance follows the placement axis.
    assert!(mean_balance(&proteus) > mean_balance(&smart_consistent) + 0.1);
    assert!(mean_balance(&blind) > mean_balance(&consistent) + 0.1);
    // Digest scenarios migrate; blind ones cannot.
    assert!(proteus.counters.migrated > 0);
    assert!(smart_consistent.counters.migrated > 0);
    assert_eq!(blind.counters.migrated, 0);
    // Smoothness follows the digest axis: digests never hurt, and the
    // blind variant pays visibly more at its worst bucket.
    let worst = |r: &ClusterReport| r.worst_bucket_quantile(0.999).unwrap().as_secs_f64();
    assert!(worst(&proteus) <= worst(&blind));
    assert!(worst(&smart_consistent) <= worst(&consistent));
}

#[test]
fn cache_wipe_failure_recovers() {
    // A mid-run cache wipe must neither lose requests nor change
    // routing; it only costs a transient refill.
    let config = ClusterConfig::small();
    let trace = Trace::synthesize(&config.trace_config(400.0), 21);
    let plan = ProvisioningPlan::all_on(config.slots, config.cache_servers);
    let mut wiped_config = config.clone();
    wiped_config.cache_wipe_failures = vec![(proteus::sim::SimTime::from_secs(30), 0)];
    let clean = ClusterSim::new(config, Scenario::Proteus, &trace, &plan, 9).run();
    let wiped = ClusterSim::new(wiped_config, Scenario::Proteus, &trace, &plan, 9).run();
    assert_eq!(
        wiped.completed_requests(),
        clean.completed_requests(),
        "no requests lost to the wipe"
    );
    assert!(
        wiped.counters.database_total() > clean.counters.database_total(),
        "the refill must show up as extra database traffic"
    );
}

#[test]
fn feedback_controller_scales_with_the_diurnal_load() {
    let mut config = ClusterConfig::small();
    config.slots = 8;
    let trace = Trace::synthesize(&config.trace_config(300.0), 33);
    let plan = ProvisioningPlan::all_on(config.slots, config.cache_servers);
    let fc = proteus::core::FeedbackController::paper_defaults(config.cache_servers)
        .min_servers(1)
        .set_points(SimDuration::from_millis(400), SimDuration::from_millis(800));
    let report = ClusterSim::new(config, Scenario::Proteus, &trace, &plan, 7)
        .with_feedback(fc)
        .run();
    // The controller must actually move (not stay pinned at max).
    let distinct: std::collections::BTreeSet<usize> =
        report.active_per_slot.iter().copied().collect();
    assert!(
        distinct.len() > 1,
        "controller never moved: {:?}",
        report.active_per_slot
    );
}
