//! End-to-end tests of the live TCP tier, including the cross-check
//! that the wire implementation of Algorithm 2 agrees with the
//! in-memory reference router.

use parking_lot::Mutex;
use proteus::cache::{CacheConfig, CacheEngine};
use proteus::core::{FetchClass, Router, Scenario, TransitionManager};
use proteus::net::{CacheClient, CacheServer, ClusterClient, ClusterFetch};
use proteus::sim::{SimDuration, SimTime};
use proteus::store::{ShardedStore, StoreConfig};

fn spawn_cluster(n: usize) -> (Vec<CacheServer>, Vec<std::net::SocketAddr>) {
    let servers: Vec<CacheServer> = (0..n)
        .map(|_| CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(8 << 20)).unwrap())
        .collect();
    let addrs = servers.iter().map(CacheServer::addr).collect();
    (servers, addrs)
}

#[test]
fn protocol_round_trip_with_binary_values() {
    let (servers, addrs) = spawn_cluster(1);
    let client = CacheClient::connect(addrs[0]).unwrap();
    let value: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
    client.set(b"binary", &value).unwrap();
    assert_eq!(client.get(b"binary").unwrap().as_deref(), Some(&value[..]));
    for s in servers {
        s.stop();
    }
}

#[test]
fn digest_travels_the_ordinary_data_protocol() {
    let (servers, addrs) = spawn_cluster(1);
    let client = CacheClient::connect(addrs[0]).unwrap();
    for i in 0..500u32 {
        client.set(format!("page:{i}").as_bytes(), b"x").unwrap();
    }
    let digest = client.snapshot_digest().unwrap().unwrap();
    for i in 0..500u32 {
        assert!(digest.contains(format!("page:{i}").as_bytes()));
    }
    let absent = (1000..2000u32)
        .filter(|i| digest.contains(format!("page:{i}").as_bytes()))
        .count();
    assert!(absent < 10, "{absent} false positives in 1000 probes");
    for s in servers {
        s.stop();
    }
}

#[test]
fn live_smooth_transition_has_zero_db_traffic_for_hot_keys() {
    let (servers, addrs) = spawn_cluster(4);
    let mut cluster = ClusterClient::connect(&addrs, Scenario::Proteus.strategy(4, 0)).unwrap();
    let db = Mutex::new(ShardedStore::new(StoreConfig {
        object_size: 128,
        ..StoreConfig::default()
    }));
    let keys: Vec<Vec<u8>> = (0..150u32)
        .map(|i| format!("page:{i}").into_bytes())
        .collect();
    for k in &keys {
        cluster.fetch(k, &db).unwrap();
    }
    let before = db.lock().total_fetches();
    cluster.begin_transition(3).unwrap();
    for k in &keys {
        let (_, how) = cluster.fetch(k, &db).unwrap();
        assert_ne!(how, ClusterFetch::Database);
    }
    assert_eq!(db.lock().total_fetches(), before);
    cluster.end_transition();
    for s in servers {
        s.stop();
    }
}

/// The TCP cluster client and the in-memory reference router must make
/// identical classification decisions when driven through the same
/// (deterministic) history.
#[test]
fn wire_and_reference_routers_agree() {
    let n = 4;
    // Reference side.
    let router = Router::new(Scenario::Proteus.strategy(n, 0));
    let mut engines: Vec<CacheEngine> = (0..n)
        .map(|_| CacheEngine::new(CacheConfig::with_capacity(8 << 20)))
        .collect();
    let mut ref_db = ShardedStore::new(StoreConfig {
        object_size: 128,
        ..StoreConfig::default()
    });
    let mut tm = TransitionManager::new(n, n);
    // Wire side.
    let (servers, addrs) = spawn_cluster(n);
    let mut cluster = ClusterClient::connect(&addrs, Scenario::Proteus.strategy(n, 0)).unwrap();
    let net_db = Mutex::new(ShardedStore::new(StoreConfig {
        object_size: 128,
        ..StoreConfig::default()
    }));

    let keys: Vec<Vec<u8>> = (0..120u32)
        .map(|i| format!("page:{i}").into_bytes())
        .collect();
    let t0 = SimTime::ZERO;
    // Phase 1: identical warming.
    for k in &keys {
        let ref_out = router.fetch(k, t0, &mut engines, &mut ref_db, &tm, true);
        let (_, net_out) = cluster.fetch(k, &net_db).unwrap();
        assert_eq!(classify(ref_out.class), net_out, "warm {k:?}");
    }
    // Phase 2: identical transition 4 -> 3.
    tm.begin(
        t0 + SimDuration::from_secs(1),
        3,
        SimDuration::from_secs(60),
        |i| engines[i].digest_snapshot(),
    );
    cluster.begin_transition(3).unwrap();
    let t1 = t0 + SimDuration::from_secs(2);
    for k in &keys {
        let ref_out = router.fetch(k, t1, &mut engines, &mut ref_db, &tm, true);
        let (_, net_out) = cluster.fetch(k, &net_db).unwrap();
        assert_eq!(classify(ref_out.class), net_out, "transition {k:?}");
    }
    assert_eq!(ref_db.total_fetches(), net_db.lock().total_fetches());
    for s in servers {
        s.stop();
    }
}

fn classify(class: FetchClass) -> ClusterFetch {
    match class {
        FetchClass::NewHit => ClusterFetch::Hit,
        FetchClass::Migrated => ClusterFetch::Migrated,
        FetchClass::Database | FetchClass::DatabaseFalsePositive => ClusterFetch::Database,
    }
}

/// A multi-key `get` must produce exactly the bytes of the N single
/// `get`s concatenated (each intermediate `END\r\n` removed, one final
/// `END`), with misses omitted — stock memcached clients depend on
/// this shape.
#[test]
fn multi_get_is_byte_identical_to_single_gets() {
    use std::io::{Read, Write};
    let (servers, addrs) = spawn_cluster(1);
    let client = CacheClient::connect(addrs[0]).unwrap();
    client.set(b"alpha", b"one").unwrap();
    client
        .set(b"gamma", &(0..=255u8).collect::<Vec<u8>>())
        .unwrap();
    client.set(b"delta", b"").unwrap();
    // "beta" and "omega" stay misses.
    let keys: [&[u8]; 5] = [b"alpha", b"beta", b"gamma", b"delta", b"omega"];

    let mut raw = std::net::TcpStream::connect(addrs[0]).unwrap();
    let mut read_single = |key: &[u8]| -> Vec<u8> {
        raw.write_all(b"get ").unwrap();
        raw.write_all(key).unwrap();
        raw.write_all(b"\r\n").unwrap();
        // Responses end with the first END line.
        let mut bytes = Vec::new();
        let mut one = [0u8; 1];
        loop {
            raw.read_exact(&mut one).unwrap();
            bytes.push(one[0]);
            if bytes.ends_with(b"END\r\n") {
                return bytes;
            }
        }
    };

    // Expected: single-get responses concatenated, inner ENDs dropped.
    let mut expected = Vec::new();
    for key in keys {
        let single = read_single(key);
        expected.extend_from_slice(&single[..single.len() - b"END\r\n".len()]);
    }
    expected.extend_from_slice(b"END\r\n");

    raw.write_all(b"get alpha beta gamma delta omega\r\n")
        .unwrap();
    let mut actual = vec![0u8; expected.len()];
    raw.read_exact(&mut actual).unwrap();
    assert_eq!(
        actual,
        expected,
        "multi-get bytes diverge: {:?} vs {:?}",
        String::from_utf8_lossy(&actual),
        String::from_utf8_lossy(&expected)
    );
    // The connection is still in sync: no stray bytes follow.
    raw.write_all(b"version\r\n").unwrap();
    let mut tail = [0u8; 8];
    raw.read_exact(&mut tail).unwrap();
    assert!(tail.starts_with(b"VERSION "), "{tail:?}");
    for s in servers {
        s.stop();
    }
}

/// The sharded server under fire: 8 client threads doing mixed
/// set/get/delete on disjoint key ranges while another thread loops
/// `get SET_BLOOM_FILTER` snapshots. No update may be lost, and the
/// final digest must match the final contents modulo Bloom false
/// positives.
#[test]
fn stress_concurrent_clients_with_snapshot_loop() {
    let (servers, addrs) = spawn_cluster(1);
    let addr = addrs[0];
    let threads = 8u32;
    let keys_per_thread = 120u32;
    let rounds = 3u32;

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let snapshotter = {
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            let client = CacheClient::connect(addr).unwrap();
            let mut taken = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let digest = client.snapshot_digest().unwrap();
                assert!(digest.is_some(), "snapshot must always be available");
                taken += 1;
            }
            taken
        })
    };

    let workers: Vec<_> = (0..threads)
        .map(|t| {
            std::thread::spawn(move || {
                let client = CacheClient::connect(addr).unwrap();
                for round in 0..rounds {
                    for i in 0..keys_per_thread {
                        let key = format!("t{t}:k{i}");
                        let value = format!("{t}:{i}:{round}");
                        client.set(key.as_bytes(), value.as_bytes()).unwrap();
                        // Read-your-write: the per-key shard lock makes
                        // this exact, snapshots notwithstanding.
                        assert_eq!(
                            client.get(key.as_bytes()).unwrap().as_deref(),
                            Some(value.as_bytes()),
                            "lost update on {key}"
                        );
                    }
                }
                // Final round: delete the odd keys.
                for i in (1..keys_per_thread).step_by(2) {
                    let key = format!("t{t}:k{i}");
                    assert!(client.delete(key.as_bytes()).unwrap(), "{key} vanished");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let snapshots = snapshotter.join().unwrap();
    assert!(snapshots > 0, "snapshot loop never completed a snapshot");

    // Verify final contents and digest agreement.
    let client = CacheClient::connect(addr).unwrap();
    let digest = client.snapshot_digest().unwrap().unwrap();
    let mut false_positives = 0u32;
    for t in 0..threads {
        for i in 0..keys_per_thread {
            let key = format!("t{t}:k{i}");
            let expected = format!("{t}:{i}:{}", rounds - 1);
            if i % 2 == 0 {
                assert_eq!(
                    client.get(key.as_bytes()).unwrap().as_deref(),
                    Some(expected.as_bytes()),
                    "wrong final value for {key}"
                );
                assert!(digest.contains(key.as_bytes()), "digest lost {key}");
            } else {
                assert_eq!(client.get(key.as_bytes()).unwrap(), None, "{key} undeleted");
                false_positives += u32::from(digest.contains(key.as_bytes()));
            }
        }
    }
    let deleted = threads * keys_per_thread / 2;
    assert!(
        false_positives * 20 < deleted,
        "{false_positives} false positives on {deleted} deleted keys"
    );
    for s in servers {
        s.stop();
    }
}

#[test]
fn concurrent_web_tier_against_one_cluster() {
    let (servers, addrs) = spawn_cluster(3);
    let cluster = std::sync::Arc::new(
        ClusterClient::connect(&addrs, Scenario::Proteus.strategy(3, 0)).unwrap(),
    );
    let db = std::sync::Arc::new(Mutex::new(ShardedStore::new(StoreConfig {
        object_size: 64,
        ..StoreConfig::default()
    })));
    let mut handles = Vec::new();
    for t in 0..4 {
        let cluster = std::sync::Arc::clone(&cluster);
        let db = std::sync::Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            for i in 0..100u32 {
                let key = format!("page:{}", (t * 100 + i) % 150);
                let (value, _) = cluster.fetch(key.as_bytes(), &*db).unwrap();
                assert!(!value.is_empty());
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    for s in servers {
        s.stop();
    }
}
