//! End-to-end tests of the live TCP tier, including the cross-check
//! that the wire implementation of Algorithm 2 agrees with the
//! in-memory reference router.

use parking_lot::Mutex;
use proteus::cache::{CacheConfig, CacheEngine};
use proteus::core::{FetchClass, Router, Scenario, TransitionManager};
use proteus::net::{CacheClient, CacheServer, ClusterClient, ClusterFetch};
use proteus::sim::{SimDuration, SimTime};
use proteus::store::{ShardedStore, StoreConfig};

fn spawn_cluster(n: usize) -> (Vec<CacheServer>, Vec<std::net::SocketAddr>) {
    let servers: Vec<CacheServer> = (0..n)
        .map(|_| CacheServer::spawn("127.0.0.1:0", CacheConfig::with_capacity(8 << 20)).unwrap())
        .collect();
    let addrs = servers.iter().map(CacheServer::addr).collect();
    (servers, addrs)
}

#[test]
fn protocol_round_trip_with_binary_values() {
    let (servers, addrs) = spawn_cluster(1);
    let client = CacheClient::connect(addrs[0]).unwrap();
    let value: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
    client.set(b"binary", &value).unwrap();
    assert_eq!(client.get(b"binary").unwrap(), Some(value));
    for s in servers {
        s.stop();
    }
}

#[test]
fn digest_travels_the_ordinary_data_protocol() {
    let (servers, addrs) = spawn_cluster(1);
    let client = CacheClient::connect(addrs[0]).unwrap();
    for i in 0..500u32 {
        client.set(format!("page:{i}").as_bytes(), b"x").unwrap();
    }
    let digest = client.snapshot_digest().unwrap().unwrap();
    for i in 0..500u32 {
        assert!(digest.contains(format!("page:{i}").as_bytes()));
    }
    let absent = (1000..2000u32)
        .filter(|i| digest.contains(format!("page:{i}").as_bytes()))
        .count();
    assert!(absent < 10, "{absent} false positives in 1000 probes");
    for s in servers {
        s.stop();
    }
}

#[test]
fn live_smooth_transition_has_zero_db_traffic_for_hot_keys() {
    let (servers, addrs) = spawn_cluster(4);
    let mut cluster = ClusterClient::connect(&addrs, Scenario::Proteus.strategy(4, 0)).unwrap();
    let db = Mutex::new(ShardedStore::new(StoreConfig {
        object_size: 128,
        ..StoreConfig::default()
    }));
    let keys: Vec<Vec<u8>> = (0..150u32)
        .map(|i| format!("page:{i}").into_bytes())
        .collect();
    for k in &keys {
        cluster.fetch(k, &db).unwrap();
    }
    let before = db.lock().total_fetches();
    cluster.begin_transition(3).unwrap();
    for k in &keys {
        let (_, how) = cluster.fetch(k, &db).unwrap();
        assert_ne!(how, ClusterFetch::Database);
    }
    assert_eq!(db.lock().total_fetches(), before);
    cluster.end_transition();
    for s in servers {
        s.stop();
    }
}

/// The TCP cluster client and the in-memory reference router must make
/// identical classification decisions when driven through the same
/// (deterministic) history.
#[test]
fn wire_and_reference_routers_agree() {
    let n = 4;
    // Reference side.
    let router = Router::new(Scenario::Proteus.strategy(n, 0));
    let mut engines: Vec<CacheEngine> = (0..n)
        .map(|_| CacheEngine::new(CacheConfig::with_capacity(8 << 20)))
        .collect();
    let mut ref_db = ShardedStore::new(StoreConfig {
        object_size: 128,
        ..StoreConfig::default()
    });
    let mut tm = TransitionManager::new(n, n);
    // Wire side.
    let (servers, addrs) = spawn_cluster(n);
    let mut cluster = ClusterClient::connect(&addrs, Scenario::Proteus.strategy(n, 0)).unwrap();
    let net_db = Mutex::new(ShardedStore::new(StoreConfig {
        object_size: 128,
        ..StoreConfig::default()
    }));

    let keys: Vec<Vec<u8>> = (0..120u32)
        .map(|i| format!("page:{i}").into_bytes())
        .collect();
    let t0 = SimTime::ZERO;
    // Phase 1: identical warming.
    for k in &keys {
        let ref_out = router.fetch(k, t0, &mut engines, &mut ref_db, &tm, true);
        let (_, net_out) = cluster.fetch(k, &net_db).unwrap();
        assert_eq!(classify(ref_out.class), net_out, "warm {k:?}");
    }
    // Phase 2: identical transition 4 -> 3.
    tm.begin(
        t0 + SimDuration::from_secs(1),
        3,
        SimDuration::from_secs(60),
        |i| engines[i].digest_snapshot(),
    );
    cluster.begin_transition(3).unwrap();
    let t1 = t0 + SimDuration::from_secs(2);
    for k in &keys {
        let ref_out = router.fetch(k, t1, &mut engines, &mut ref_db, &tm, true);
        let (_, net_out) = cluster.fetch(k, &net_db).unwrap();
        assert_eq!(classify(ref_out.class), net_out, "transition {k:?}");
    }
    assert_eq!(ref_db.total_fetches(), net_db.lock().total_fetches());
    for s in servers {
        s.stop();
    }
}

fn classify(class: FetchClass) -> ClusterFetch {
    match class {
        FetchClass::NewHit => ClusterFetch::Hit,
        FetchClass::Migrated => ClusterFetch::Migrated,
        FetchClass::Database | FetchClass::DatabaseFalsePositive => ClusterFetch::Database,
    }
}

#[test]
fn concurrent_web_tier_against_one_cluster() {
    let (servers, addrs) = spawn_cluster(3);
    let cluster = std::sync::Arc::new(
        ClusterClient::connect(&addrs, Scenario::Proteus.strategy(3, 0)).unwrap(),
    );
    let db = std::sync::Arc::new(Mutex::new(ShardedStore::new(StoreConfig {
        object_size: 64,
        ..StoreConfig::default()
    })));
    let mut handles = Vec::new();
    for t in 0..4 {
        let cluster = std::sync::Arc::clone(&cluster);
        let db = std::sync::Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            for i in 0..100u32 {
                let key = format!("page:{}", (t * 100 + i) % 150);
                let (value, _) = cluster.fetch(key.as_bytes(), &*db).unwrap();
                assert!(!value.is_empty());
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    for s in servers {
        s.stop();
    }
}
