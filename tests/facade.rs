//! Smoke tests of the facade crate: every subsystem is reachable
//! through `proteus::*` and composes.

use proteus::bloom::BloomConfig;
use proteus::cache::{CacheConfig, CacheEngine};
use proteus::ring::{PlacementStrategy, ProteusPlacement};
use proteus::sim::{SimDuration, SimRng, SimTime, Welford};
use proteus::store::{ShardedStore, StoreConfig};
use proteus::workload::{Trace, TraceConfig, ZipfSampler};

#[test]
fn every_subsystem_is_reachable_and_composes() {
    // ring
    let placement = ProteusPlacement::generate(4);
    let server = placement.server_for(42, 4);
    assert!(server.index() < 4);
    // bloom via cache digest
    let mut cache = CacheEngine::new(CacheConfig::with_capacity(1 << 20).digest(BloomConfig::new(
        1 << 12,
        4,
        4,
    )));
    cache.put(b"k", b"v".to_vec(), SimTime::ZERO);
    assert!(cache.digest().contains(b"k"));
    // store
    let mut store = ShardedStore::new(StoreConfig::default());
    assert_eq!(store.fetch(b"k").len(), 4096);
    // workload
    let zipf = ZipfSampler::new(100, 0.8);
    let mut rng = SimRng::seed_from_u64(1);
    assert!((1..=100).contains(&zipf.sample(&mut rng)));
    // Session-granular synthesis needs a horizon long enough for a few
    // sessions to arrive.
    let trace = Trace::synthesize(
        &TraceConfig {
            duration: SimDuration::from_secs(60),
            mean_rate: 100.0,
            pages: 100,
            ..TraceConfig::default()
        },
        1,
    );
    assert!(!trace.is_empty());
    // sim statistics
    let w: Welford = [1.0, 2.0, 3.0].into_iter().collect();
    assert_eq!(w.count(), 3);
}

#[test]
fn readme_quickstart_compiles_and_runs() {
    use proteus::core::{ClusterConfig, ClusterSim, ProvisioningPlan, Scenario};
    let mut config = ClusterConfig::small();
    config.slots = 2;
    let trace = Trace::synthesize(&config.trace_config(50.0), 42);
    let plan = ProvisioningPlan::load_proportional(
        &trace.requests_per_slot(config.slot, config.slots),
        config.cache_servers,
        2,
    );
    let report = ClusterSim::new(config, Scenario::Proteus, &trace, &plan, 7).run();
    assert!(report.worst_bucket_quantile(0.999).is_some());
}
