//! Cross-validation: the discrete-event simulator against the
//! synchronous reference router.
//!
//! With requests spaced far apart (no two in flight at once), the DES
//! collapses to a sequential replay: its hit/miss classification must
//! match running the same trace through [`Router`] by hand, key for
//! key. This pins the simulator's routing/caching logic to the
//! independently-tested reference implementation.

use proteus::cache::{CacheConfig, CacheEngine};
use proteus::core::{
    page_key, ClusterConfig, ClusterSim, FetchClass, ProvisioningPlan, Router, Scenario,
    TransitionManager,
};
use proteus::sim::{SimDuration, SimTime};
use proteus::store::{ShardedStore, StoreConfig};
use proteus::workload::{Trace, TraceRecord};

/// Widely-spaced trace: one request every 50 ms (any request completes
/// within ~10 ms even via the database, so no two overlap).
fn serial_trace(config: &ClusterConfig, requests: u64) -> Trace {
    let mut records = Vec::new();
    // A deterministic page sequence with re-use (so hits occur) spread
    // over a catalog slice.
    for i in 0..requests {
        let page = 1 + (i * i + i / 3) % (config.pages / 100).max(10);
        records.push(TraceRecord {
            at: SimTime::ZERO + SimDuration::from_millis(50 * i),
            page,
        });
    }
    Trace::from_records(records)
}

#[test]
fn des_matches_reference_router_on_serial_traffic() {
    let mut config = ClusterConfig::small();
    config.prewarm = false;
    config.slots = 6;
    config.slot = SimDuration::from_secs(10);
    // Keep every request strictly serial and DB service fast.
    config.latency.db_service = proteus::sim::Distribution::constant(0.005);
    let requests = 1100; // spans all six slots at 20 req/s
    let trace = serial_trace(&config, requests);
    let plan = ProvisioningPlan::all_on(config.slots, config.cache_servers);

    // DES run (Static: no transitions, pure routing+caching).
    let report = ClusterSim::new(config.clone(), Scenario::Static, &trace, &plan, 3).run();

    // Synchronous replay with the same engine configuration.
    let router = Router::new(Scenario::Static.strategy(config.cache_servers, 0));
    let mut caches: Vec<CacheEngine> = (0..config.cache_servers)
        .map(|_| {
            CacheEngine::new(
                CacheConfig::with_capacity(config.cache_capacity_bytes).hot_ttl(config.hot_ttl),
            )
        })
        .collect();
    let mut db = ShardedStore::new(StoreConfig {
        shards: config.db_shards,
        object_size: config.object_size,
        placement_seed: 0x570_12e5,
    });
    let tm = TransitionManager::new(config.cache_servers, config.cache_servers);
    let mut hits = 0u64;
    let mut database = 0u64;
    for rec in trace.records() {
        let key = page_key(rec.page);
        match router
            .fetch(&key, rec.at, &mut caches, &mut db, &tm, false)
            .class
        {
            FetchClass::NewHit => hits += 1,
            FetchClass::Database | FetchClass::DatabaseFalsePositive => database += 1,
            FetchClass::Migrated => unreachable!("no transitions in Static"),
        }
    }

    assert_eq!(report.completed_requests(), requests);
    assert_eq!(
        report.counters.new_hits, hits,
        "DES hits {} vs reference {}",
        report.counters.new_hits, hits
    );
    assert_eq!(
        report.counters.database_total(),
        database,
        "DES database fetches vs reference"
    );
    // And the database tier saw identical per-shard traffic.
    assert_eq!(report.counters.database_total(), db.total_fetches());
}

/// The same equivalence holds for value sizes: the DES's cache puts use
/// the configured object size, so byte-for-byte occupancy matches.
#[test]
fn des_inserts_configured_object_sizes() {
    let mut config = ClusterConfig::small();
    config.prewarm = false;
    let trace = serial_trace(&config, 200);
    let plan = ProvisioningPlan::all_on(config.slots, config.cache_servers);
    let report = ClusterSim::new(config.clone(), Scenario::Static, &trace, &plan, 3).run();
    // Distinct pages fetched = database fetches; each occupies
    // object_size (+key+overhead) bytes across the tier — just confirm
    // the DES's own accounting is consistent with its miss count.
    assert!(report.counters.database_total() > 0);
    assert!(report.counters.new_hits > 0);
    assert_eq!(
        report.counters.database_total() + report.counters.new_hits,
        200
    );
}
